package cluster

import (
	"context"
	"errors"

	"spatialsim/internal/geom"
	"spatialsim/internal/serve"
)

// ErrNodeDown is the transport-level failure of an unreachable node: staging
// against it aborts the cluster swap, querying it triggers failover to the
// tile's replica owners.
var ErrNodeDown = errors.New("cluster: node down")

// ErrNotBootstrapped is returned by coordinator writes before Bootstrap has
// computed a placement — without tiles there is nothing to route by.
var ErrNotBootstrapped = errors.New("cluster: not bootstrapped")

const (
	// FaultNodeStage is the failpoint consulted once per node on the staging
	// (phase-1 write) path; per-node arming appends ":<node name>".
	FaultNodeStage = "cluster.node.stage"
	// FaultNodeQuery is the failpoint consulted once per node query on the
	// scatter path — arming it with latency simulates a slow node (what
	// hedged requests exist for), arming it with errors simulates a flaky
	// one (what failover exists for). Per-node arming appends ":<node name>".
	FaultNodeQuery = "cluster.node.query"
)

// EpochRef is a pinned handle on one node's local epoch: the unit a cluster
// view is assembled from. Queries against the ref always observe exactly the
// pinned generation; Release drops the pin (exactly once — a double release
// is a lifecycle bug and panics in the in-process implementation).
type EpochRef interface {
	// Seq is the node-local epoch sequence the ref pins.
	Seq() uint64
	// Bounds is the MBR of everything the pinned epoch serves — the
	// cluster-level fan-out prune.
	Bounds() geom.AABB
	// Len is the pinned epoch's item count.
	Len() int
	// Query executes one read against the pinned generation under the node
	// store's admission control and deadline policy.
	Query(req serve.Request) serve.Reply
	// Release drops the pin.
	Release()
}

// Transport is the coordinator's view of one node. The in-process
// implementation (Node) wraps a serve.Store directly; an HTTP implementation
// would speak the same shapes over the wire (stage = POST batch, pin = epoch
// lease) without the coordinator changing.
type Transport interface {
	// Name identifies the node in errors, metrics and traces.
	Name() string
	// Stage applies a routed sub-batch to the node's local store, advancing
	// its local epoch (invisible to cluster readers until the coordinator
	// publishes a view). Returns the node-local epoch sequence that includes
	// the batch.
	Stage(ctx context.Context, batch []serve.Update) (uint64, error)
	// Pin pins the node's current local epoch for cluster-view reads.
	Pin() (EpochRef, error)
}
