// Package cluster scales the serving subsystem from one process to a small
// fleet: STR-partitioned placement of the dataset across 2-3 node instances
// (each node a serve.Store with its own persist directory — segment files
// are the shipping and replication unit), a thin coordinator that
// scatter/gathers range, kNN and join queries over a transport-interface
// fan-out, and epoch-consistent cluster-wide swaps.
//
// # Placement
//
// The dataset is cut into node-sized tiles with the same sort-tile-recursive
// discipline the epoch builder shards with (serve.PartitionSTR), so node
// boundaries nest naturally over shard boundaries. Each tile is owned by a
// primary node plus Replication-1 replicas in round-robin order; writes
// route by box center to the owning tile's nodes (with a delete broadcast
// that keeps a moved item from lingering on its old owner), reads prune the
// node fan-out by each node's epoch MBR — the cluster-level lift of the
// per-shard MBR pruning inside every store.
//
// # Epoch-consistent swaps
//
// A cluster epoch is published in two phases. Stage: the coordinator routes
// the batch into per-node sub-batches and applies them to every node (each
// node's local epoch advances, invisible to cluster readers). Publish: only
// when every node acked its stage, the coordinator pins each node's new
// epoch (serve.Store.AcquireEpoch) into a fresh view and atomically swaps
// the view pointer. Readers pin the view for the duration of a query and
// read through its pinned node epochs (serve.Store.QueryPinned), so every
// read observes one consistent cluster generation end to end — even while
// node-local epochs churn underneath — and a stage failure aborts the swap
// with the old view intact. The superseded view's node pins release when its
// last reader drains, which is what finally lets node epochs retire.
//
// # Partial failure
//
// The coordinator inherits the single-store robustness contract: a node
// fan-out that fails or exceeds the hedge delay fails over to untried
// replica owners of the unresolved tiles; if every owner of some tile is
// gone, the reply degrades (Reply.Degraded plus per-node error detail,
// reusing the serve.ErrOverload / serve.ErrDeadline vocabulary) rather than
// returning wrong answers — results merged from the surviving nodes are
// deduplicated by item ID, so replica overlap never duplicates and a dead
// node never corrupts. Metrics surface as spatial_cluster_* series and every
// fan-out gets per-node child spans in the request trace.
package cluster
