package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"spatialsim/internal/faultinject"
	"spatialsim/internal/geom"
	"spatialsim/internal/index"
	"spatialsim/internal/serve"
)

func clusterItems(n int, seed int64) []index.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]index.Item, n)
	for i := range items {
		c := geom.V(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		h := geom.V(0.4, 0.4, 0.4)
		items[i] = index.Item{ID: int64(i + 1), Box: geom.NewAABB(c.Sub(h), c.Add(h))}
	}
	return items
}

func universe() geom.AABB {
	return geom.NewAABB(geom.V(-1e6, -1e6, -1e6), geom.V(1e6, 1e6, 1e6))
}

// newTestCluster builds an in-memory fleet plus its coordinator.
func newTestCluster(t *testing.T, nodes, replication int, hedge time.Duration) (*Coordinator, []*Node) {
	t.Helper()
	trs := make([]Transport, nodes)
	nds := make([]*Node, nodes)
	for i := 0; i < nodes; i++ {
		st, err := serve.New(serve.Config{Shards: 4})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		t.Cleanup(st.Close)
		nds[i] = NewNode(nodeName(i), st)
		trs[i] = nds[i]
	}
	co, err := New(Config{Transports: trs, Replication: replication, HedgeAfter: hedge})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	t.Cleanup(co.Close)
	return co, nds
}

func nodeName(i int) string { return string(rune('a' + i)) }

func ids(items []index.Item) []int64 {
	out := make([]int64, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	return out
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortByDist(items []index.Item, p geom.Vec3) {
	sort.Slice(items, func(i, j int) bool {
		di, dj := items[i].Box.Distance2ToPoint(p), items[j].Box.Distance2ToPoint(p)
		if di != dj {
			return di < dj
		}
		return items[i].ID < items[j].ID
	})
}

// TestClusterConformance checks the headline acceptance bar: a 3-node
// coordinator answers range, kNN and join byte-identically to one store
// holding the same dataset.
func TestClusterConformance(t *testing.T) {
	items := clusterItems(500, 42)
	co, _ := newTestCluster(t, 3, 2, 0)
	if _, err := co.Bootstrap(items); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	single, err := serve.New(serve.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	single.Bootstrap(items)

	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 25; q++ {
		c := geom.V(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		h := geom.V(3+rng.Float64()*15, 3+rng.Float64()*15, 3+rng.Float64()*15)
		box := geom.NewAABB(c.Sub(h), c.Add(h))
		rep := co.Range(context.Background(), box)
		if rep.Err != nil || rep.Degraded {
			t.Fatalf("range %d: err=%v degraded=%v", q, rep.Err, rep.Degraded)
		}
		want := single.Query(serve.Request{Op: serve.OpRange, Query: box}).Items
		sort.Slice(want, func(i, j int) bool { return want[i].ID < want[j].ID })
		if !sameIDs(ids(rep.Items), ids(want)) {
			t.Fatalf("range %d: cluster %v != single %v", q, ids(rep.Items), ids(want))
		}
	}

	for q := 0; q < 25; q++ {
		p := geom.V(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		k := 1 + rng.Intn(20)
		rep := co.KNN(context.Background(), p, k)
		if rep.Err != nil || rep.Degraded {
			t.Fatalf("knn %d: err=%v degraded=%v", q, rep.Err, rep.Degraded)
		}
		want := single.Query(serve.Request{Op: serve.OpKNN, Point: p, K: k}).Items
		sortByDist(want, p)
		if !sameIDs(ids(rep.Items), ids(want)) {
			t.Fatalf("knn %d (k=%d): cluster %v != single %v", q, k, ids(rep.Items), ids(want))
		}
	}

	for _, eps := range []float64{0, 0.5, 2} {
		rep := co.Join(context.Background(), serve.JoinRequest{Eps: eps})
		if rep.Err != nil || rep.Degraded {
			t.Fatalf("join eps=%v: err=%v degraded=%v", eps, rep.Err, rep.Degraded)
		}
		want := single.SelfJoin(serve.JoinRequest{Eps: eps})
		if len(rep.Pairs) != len(want.Pairs) {
			t.Fatalf("join eps=%v: %d pairs != %d", eps, len(rep.Pairs), len(want.Pairs))
		}
		for i := range want.Pairs {
			if rep.Pairs[i] != want.Pairs[i] {
				t.Fatalf("join eps=%v: pair %d %v != %v", eps, i, rep.Pairs[i], want.Pairs[i])
			}
		}
	}
}

// TestClusterApplyRoutesAndDeletes exercises the routing invariants: a moved
// item lands on its new tile's owners only (the implicit delete scrubs the
// old ones, so the merged result has no duplicate), and an explicit delete
// vanishes everywhere.
func TestClusterApplyRoutesAndDeletes(t *testing.T) {
	items := clusterItems(300, 3)
	co, _ := newTestCluster(t, 3, 1, 0)
	if _, err := co.Bootstrap(items); err != nil {
		t.Fatal(err)
	}

	// Move item 5 across the space (very likely a different tile) and delete
	// item 7.
	moved := geom.NewAABB(geom.V(95, 95, 95), geom.V(96, 96, 96))
	if _, err := co.Apply([]serve.Update{
		{ID: 5, Box: moved},
		{ID: 7, Delete: true},
	}); err != nil {
		t.Fatal(err)
	}

	rep := co.Range(context.Background(), universe())
	if rep.Err != nil || rep.Degraded {
		t.Fatalf("range: err=%v degraded=%v", rep.Err, rep.Degraded)
	}
	if len(rep.Items) != len(items)-1 {
		t.Fatalf("items = %d, want %d", len(rep.Items), len(items)-1)
	}
	seen := make(map[int64]int)
	for _, it := range rep.Items {
		seen[it.ID]++
		if it.ID == 5 && it.Box != moved {
			t.Fatalf("item 5 box = %v, want moved %v", it.Box, moved)
		}
	}
	if seen[7] != 0 {
		t.Fatal("deleted item 7 still served")
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("item %d served %d times", id, n)
		}
	}
}

// TestClusterApplyBeforeBootstrap pins the write contract: no placement, no
// routing.
func TestClusterApplyBeforeBootstrap(t *testing.T) {
	co, _ := newTestCluster(t, 2, 1, 0)
	if _, err := co.Apply([]serve.Update{{ID: 1, Box: universe()}}); !errors.Is(err, ErrNotBootstrapped) {
		t.Fatalf("err = %v, want ErrNotBootstrapped", err)
	}
	// Reads before bootstrap are empty, not errors.
	rep := co.Range(context.Background(), universe())
	if rep.Err != nil || rep.Degraded || len(rep.Items) != 0 {
		t.Fatalf("pre-bootstrap range: %+v", rep)
	}
}

// TestClusterSwapStormNoTornEpochs is the torn-epoch acceptance gate: while a
// writer publishes generations as fast as it can, every concurrent read must
// observe exactly one generation — all n items present, all carrying the same
// generation marker — and the observed cluster epoch must be monotone.
func TestClusterSwapStormNoTornEpochs(t *testing.T) {
	const (
		n    = 300
		gens = 10
	)
	co, _ := newTestCluster(t, 3, 2, 0)
	base := clusterItems(n, 11)
	if _, err := co.Bootstrap(base); err != nil {
		t.Fatal(err)
	}

	genBox := func(i int, gen int) geom.AABB {
		c := base[i].Box.Center()
		// The generation rides in the Z size: gen g makes the half-extent
		// 0.5+g, recoverable from any one item.
		h := geom.V(0.4, 0.4, 0.5+float64(gen))
		return geom.NewAABB(c.Sub(h), c.Add(h))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				rep := co.Range(context.Background(), universe())
				if rep.Err != nil || rep.Degraded {
					errc <- rep.Err
					return
				}
				if rep.Epoch < lastEpoch {
					errc <- errors.New("cluster epoch went backwards")
					return
				}
				lastEpoch = rep.Epoch
				if len(rep.Items) != n {
					errc <- errors.New("torn read: wrong item count")
					return
				}
				// Generations are 2.0 apart in Z size; anything beyond float
				// rounding noise is a torn epoch.
				want := rep.Items[0].Box.Size().Z
				for _, it := range rep.Items {
					if d := it.Box.Size().Z - want; d > 0.5 || d < -0.5 {
						errc <- errors.New("torn read: mixed generations in one reply")
						return
					}
				}
			}
		}()
	}

	for g := 1; g <= gens; g++ {
		batch := make([]serve.Update, n)
		for i := range batch {
			batch[i] = serve.Update{ID: base[i].ID, Box: genBox(i, g)}
		}
		if _, err := co.Apply(batch); err != nil {
			t.Fatalf("gen %d: %v", g, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("reader: %v", err)
	default:
	}
	if got := co.Epoch(); got != uint64(gens)+1 {
		t.Fatalf("cluster epoch = %d, want %d", got, gens+1)
	}
}

// pickIsolatedBox finds a query box whose matches live only on one tile's
// owners (every other node's MBR is disjoint, so the fan-out prunes it) —
// the topology where failover and hedging genuinely fire, because the
// initial scatter targets just the tile's primary.
func pickIsolatedBox(t *testing.T, p Placement, nodes int, items []index.Item) (int, geom.AABB) {
	t.Helper()
	tiles := p.Tiles()
	nodeMBR := make([]geom.AABB, nodes)
	nodeSeen := make([]bool, nodes)
	tileMBR := make([]geom.AABB, len(tiles))
	tileSeen := make([]bool, len(tiles))
	for _, it := range items {
		ti := p.Route(it.Box)
		if !tileSeen[ti] {
			tileMBR[ti], tileSeen[ti] = it.Box, true
		} else {
			tileMBR[ti] = tileMBR[ti].Union(it.Box)
		}
		for _, o := range tiles[ti].Owners {
			if !nodeSeen[o] {
				nodeMBR[o], nodeSeen[o] = it.Box, true
			} else {
				nodeMBR[o] = nodeMBR[o].Union(it.Box)
			}
		}
	}
	for ti := range tiles {
		if !tileSeen[ti] {
			continue
		}
		owner := make(map[int]bool)
		for _, o := range tiles[ti].Owners {
			owner[o] = true
		}
		for _, shrink := range []float64{0.5, 0.3, 0.2} {
			c, s := tileMBR[ti].Center(), tileMBR[ti].Size().Scale(shrink/2)
			box := geom.NewAABB(c.Sub(s), c.Add(s))
			ok := true
			for o := 0; o < nodes; o++ {
				if !owner[o] && nodeSeen[o] && box.Intersects(nodeMBR[o]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			hit := false
			for _, it := range items {
				if it.Box.Intersects(box) {
					hit = true
					break
				}
			}
			if hit {
				return ti, box
			}
		}
	}
	t.Fatal("no tile-isolated query box found for this dataset/placement")
	return 0, geom.AABB{}
}

func bruteRange(items []index.Item, box geom.AABB) []int64 {
	var out []int64
	for _, it := range items {
		if it.Box.Intersects(box) {
			out = append(out, it.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestClusterAbsorbsKilledNodeOnFullFanout: a universe query targets every
// node up front, so a single failure with replication 2 is absorbed by the
// replicas already in flight — complete, not degraded, error still recorded.
func TestClusterAbsorbsKilledNodeOnFullFanout(t *testing.T) {
	items := clusterItems(400, 21)
	co, nds := newTestCluster(t, 3, 2, 0)
	if _, err := co.Bootstrap(items); err != nil {
		t.Fatal(err)
	}
	nds[1].Kill()
	defer nds[1].Revive()

	rep := co.Range(context.Background(), universe())
	if rep.Err != nil {
		t.Fatalf("range err: %v", rep.Err)
	}
	if rep.Degraded {
		t.Fatalf("degraded with a live replica: %+v", rep.NodeErrors)
	}
	if len(rep.Items) != len(items) {
		t.Fatalf("items = %d, want %d (replicas must keep the answer complete)", len(rep.Items), len(items))
	}
	// NodeErrors may or may not carry the dead node: once every tile is
	// resolved the scatter returns without waiting for stragglers.
}

// TestClusterFailoverCoversKilledNode: a query isolated to one tile scatters
// to the tile's primary only; with the primary dead, the read must fail over
// to the replica and come back complete.
func TestClusterFailoverCoversKilledNode(t *testing.T) {
	items := clusterItems(400, 21)
	co, nds := newTestCluster(t, 3, 2, 0)
	if _, err := co.Bootstrap(items); err != nil {
		t.Fatal(err)
	}
	ti, box := pickIsolatedBox(t, co.Placement(), 3, items)
	primary := co.Placement().Tiles()[ti].Owners[0]
	nds[primary].Kill()
	defer nds[primary].Revive()

	rep := co.Range(context.Background(), box)
	if rep.Err != nil {
		t.Fatalf("range err: %v", rep.Err)
	}
	if rep.Degraded {
		t.Fatalf("degraded with a live replica: %+v", rep.NodeErrors)
	}
	if want := bruteRange(items, box); !sameIDs(ids(rep.Items), want) {
		t.Fatalf("failover result %v != truth %v", ids(rep.Items), want)
	}
	if rep.Failovers == 0 {
		t.Fatal("expected failover queries after primary kill")
	}
	if len(rep.NodeErrors) == 0 {
		t.Fatal("node error detail missing from failover reply")
	}
}

// TestClusterDegradedNeverWrong: with replication 1 a killed node's tile is
// simply gone — the reply must degrade, and everything it does carry must be
// correct (a strict subset of the truth, no duplicates, no stray items).
func TestClusterDegradedNeverWrong(t *testing.T) {
	items := clusterItems(400, 23)
	co, nds := newTestCluster(t, 3, 1, 0)
	if _, err := co.Bootstrap(items); err != nil {
		t.Fatal(err)
	}
	truth := make(map[int64]geom.AABB, len(items))
	for _, it := range items {
		truth[it.ID] = it.Box
	}
	nds[2].Kill()
	defer nds[2].Revive()

	rep := co.Range(context.Background(), universe())
	if rep.Err != nil {
		t.Fatalf("range err: %v", rep.Err)
	}
	if !rep.Degraded {
		t.Fatal("replication 1 + dead node must degrade")
	}
	if len(rep.Items) == 0 || len(rep.Items) >= len(items) {
		t.Fatalf("degraded items = %d, want a proper non-empty subset of %d", len(rep.Items), len(items))
	}
	seen := make(map[int64]bool)
	for _, it := range rep.Items {
		box, ok := truth[it.ID]
		if !ok || it.Box != box {
			t.Fatalf("degraded reply carries wrong item %d", it.ID)
		}
		if seen[it.ID] {
			t.Fatalf("degraded reply duplicates item %d", it.ID)
		}
		seen[it.ID] = true
	}

	// All nodes dead: zero progress is an error, not an empty success.
	nds[0].Kill()
	nds[1].Kill()
	defer nds[0].Revive()
	defer nds[1].Revive()
	rep = co.Range(context.Background(), universe())
	if !errors.Is(rep.Err, ErrUnavailable) {
		t.Fatalf("all-dead err = %v, want ErrUnavailable", rep.Err)
	}
}

// TestClusterStageFailureAbortsSwap: a node that cannot stage aborts the
// whole swap — the cluster epoch does not advance and readers keep seeing the
// old generation in full.
func TestClusterStageFailureAbortsSwap(t *testing.T) {
	items := clusterItems(200, 31)
	co, nds := newTestCluster(t, 3, 2, 0)
	if _, err := co.Bootstrap(items); err != nil {
		t.Fatal(err)
	}
	before := co.Epoch()

	nds[1].Kill()
	_, err := co.Apply([]serve.Update{{ID: 9999, Box: universe()}})
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("apply err = %v, want ErrNodeDown", err)
	}
	if co.Epoch() != before {
		t.Fatalf("epoch advanced to %d after aborted swap", co.Epoch())
	}
	st := co.Stats()
	if st.StageFailures == 0 {
		t.Fatal("stage failure not counted")
	}
	nds[1].Revive()

	// The view is untouched: a full read still serves every original item,
	// and the retried apply succeeds.
	rep := co.Range(context.Background(), universe())
	if rep.Err != nil || rep.Degraded || len(rep.Items) != len(items) {
		t.Fatalf("post-abort range: err=%v degraded=%v items=%d", rep.Err, rep.Degraded, len(rep.Items))
	}
	if _, err := co.Apply([]serve.Update{{ID: 9999, Box: items[0].Box}}); err != nil {
		t.Fatalf("retried apply: %v", err)
	}
	if co.Epoch() != before+1 {
		t.Fatalf("epoch = %d after retry, want %d", co.Epoch(), before+1)
	}
}

// TestClusterHedgedRequests: a slow (not failed) primary on an isolated tile
// trips the hedge timer; the replica answers first and the reply comes back
// complete, fast, with the hedge counted.
func TestClusterHedgedRequests(t *testing.T) {
	items := clusterItems(400, 41)
	co, _ := newTestCluster(t, 3, 2, 5*time.Millisecond)
	if _, err := co.Bootstrap(items); err != nil {
		t.Fatal(err)
	}
	ti, box := pickIsolatedBox(t, co.Placement(), 3, items)
	primary := co.Placement().Tiles()[ti].Owners[0]
	defer faultinject.Reset()
	faultinject.Enable(FaultNodeQuery+":"+nodeName(primary), faultinject.Spec{
		LatencyRate: 1, Latency: 300 * time.Millisecond,
	})

	t0 := time.Now()
	rep := co.Range(context.Background(), box)
	if rep.Err != nil || rep.Degraded {
		t.Fatalf("range: err=%v degraded=%v", rep.Err, rep.Degraded)
	}
	if want := bruteRange(items, box); !sameIDs(ids(rep.Items), want) {
		t.Fatalf("hedged result %v != truth %v", ids(rep.Items), want)
	}
	if rep.Hedges == 0 {
		t.Fatal("expected hedged queries against the slow primary's tile")
	}
	if el := time.Since(t0); el >= 300*time.Millisecond {
		t.Fatalf("hedge did not cut latency: %v", el)
	}
}

// TestClusterDeadline: a context that dies mid-fan-out surfaces the serve
// deadline vocabulary on zero progress.
func TestClusterDeadline(t *testing.T) {
	items := clusterItems(200, 51)
	co, _ := newTestCluster(t, 2, 1, 0)
	if _, err := co.Bootstrap(items); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	faultinject.Enable(FaultNodeQuery, faultinject.Spec{LatencyRate: 1, Latency: time.Second})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	rep := co.Range(ctx, universe())
	if !errors.Is(rep.Err, serve.ErrDeadline) {
		t.Fatalf("err = %v, want serve.ErrDeadline", rep.Err)
	}
}

// TestClusterMetrics smoke-checks the spatial_cluster_* registration and a
// few counter movements.
func TestClusterMetrics(t *testing.T) {
	items := clusterItems(100, 61)
	trs := make([]Transport, 2)
	for i := range trs {
		st, err := serve.New(serve.Config{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		trs[i] = NewNode(nodeName(i), st)
	}
	reg := newTestRegistry(t)
	co, err := New(Config{Transports: trs, Replication: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if _, err := co.Bootstrap(items); err != nil {
		t.Fatal(err)
	}
	co.Range(context.Background(), universe())
	co.KNN(context.Background(), geom.V(1, 2, 3), 5)

	text := promText(t, reg)
	for _, want := range []string{
		"spatial_cluster_epoch 1",
		"spatial_cluster_nodes 2",
		"spatial_cluster_nodes_up 2",
		"spatial_cluster_queries_total 2",
		"spatial_cluster_epoch_swaps_total 1",
		"spatial_cluster_query_seconds",
	} {
		if !containsLine(text, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}
