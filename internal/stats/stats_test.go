package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("Mean wrong")
	}
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Error("Sum wrong")
	}
	if Sum(nil) != 0 {
		t.Error("Sum(nil) != 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Error("Min/Max wrong")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be infinities")
	}
}

func TestVarianceStdDev(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Error("single-sample variance should be 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Error("extreme percentiles wrong")
	}
	if Percentile(xs, -10) != 1 || Percentile(xs, 200) != 5 {
		t.Error("out-of-range percentiles should clamp")
	}
	if Median(xs) != 3 {
		t.Error("median wrong")
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v, want 2", got)
	}
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Errorf("interpolated median = %v, want 1.5", got)
	}
	// Percentile must not mutate its input.
	ys := []float64{5, 1, 3}
	Percentile(ys, 50)
	if ys[0] != 5 || ys[1] != 1 || ys[2] != 3 {
		t.Error("Percentile mutated input")
	}
}

func TestFractionAbove(t *testing.T) {
	xs := []float64{0.01, 0.02, 0.05, 0.2, 0.5}
	if got := FractionAbove(xs, 0.1); got != 0.4 {
		t.Errorf("FractionAbove = %v, want 0.4", got)
	}
	if FractionAbove(nil, 1) != 0 {
		t.Error("empty FractionAbove should be 0")
	}
	if FractionAbove(xs, 0.5) != 0 {
		t.Error("strictly-greater comparison expected")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		o.Add(xs[i])
	}
	if o.N() != 1000 {
		t.Errorf("N = %d", o.N())
	}
	if math.Abs(o.Mean()-Mean(xs)) > 1e-9 {
		t.Errorf("online mean %v vs batch %v", o.Mean(), Mean(xs))
	}
	if math.Abs(o.Variance()-Variance(xs)) > 1e-6 {
		t.Errorf("online variance %v vs batch %v", o.Variance(), Variance(xs))
	}
	if o.Min() != Min(xs) || o.Max() != Max(xs) {
		t.Error("online min/max mismatch")
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.Min() != 0 || o.Max() != 0 || o.N() != 0 {
		t.Error("zero-value Online should report zeros")
	}
	o.Add(5)
	if o.Variance() != 0 {
		t.Error("single-sample variance should be 0")
	}
	if o.Min() != 5 || o.Max() != 5 {
		t.Error("single-sample min/max should equal the sample")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 100)
	}
	if h.Total() != 100 {
		t.Errorf("Total = %d", h.Total())
	}
	for i, b := range h.Buckets {
		if b != 10 {
			t.Errorf("bucket %d = %d, want 10", i, b)
		}
	}
	// Clamping.
	h2 := NewHistogram(0, 1, 4)
	h2.Add(-5)
	h2.Add(99)
	if h2.Buckets[0] != 1 || h2.Buckets[3] != 1 {
		t.Error("out-of-range samples should clamp to edge buckets")
	}
	lo, hi := h2.BucketBounds(1)
	if lo != 0.25 || hi != 0.5 {
		t.Errorf("BucketBounds = %v, %v", lo, hi)
	}
	if h2.String() == "" {
		t.Error("String should not be empty")
	}
	// Degenerate constructors.
	h3 := NewHistogram(5, 5, 0)
	h3.Add(5)
	if h3.Total() != 1 {
		t.Error("degenerate histogram should still accept samples")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Mod(math.Abs(p1), 100)
		b := math.Mod(math.Abs(p2), 100)
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		return pa <= pb+1e-9 && pa >= Min(xs)-1e-9 && pb <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
