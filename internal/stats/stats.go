// Package stats provides the small set of summary statistics used by the
// experiment harnesses: means, percentiles, histograms and online (Welford)
// accumulators. It exists so that simulators and benchmarks do not each
// re-implement ad-hoc statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0-100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// FractionAbove returns the fraction of samples strictly greater than
// threshold.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Online is a numerically stable (Welford) accumulator for mean and variance.
// The zero value is ready to use.
type Online struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of samples added.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean.
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest sample seen (0 if none).
func (o *Online) Min() float64 {
	if o.n == 0 {
		return 0
	}
	return o.min
}

// Max returns the largest sample seen (0 if none).
func (o *Online) Max() float64 {
	if o.n == 0 {
		return 0
	}
	return o.max
}

// Histogram is a fixed-width-bucket histogram over [Lo, Hi). Samples outside
// the range are clamped into the first or last bucket.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int64
}

// NewHistogram returns a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, n)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	n := len(h.Buckets)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Buckets[i]++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int64 {
	var t int64
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// BucketBounds returns the [lo, hi) range of bucket i.
func (h *Histogram) BucketBounds(i int) (float64, float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// String renders the histogram one bucket per line with counts.
func (h *Histogram) String() string {
	var sb strings.Builder
	for i, c := range h.Buckets {
		lo, hi := h.BucketBounds(i)
		fmt.Fprintf(&sb, "[%8.4f, %8.4f): %d\n", lo, hi, c)
	}
	return sb.String()
}
