package mesh

import (
	"math/rand"
	"testing"

	"spatialsim/internal/geom"
)

func latticeUniverse() geom.AABB { return geom.NewAABB(geom.V(0, 0, 0), geom.V(10, 10, 10)) }

func toSet(xs []int32) map[int32]bool {
	s := make(map[int32]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}

func TestGenerateLatticeStructure(t *testing.T) {
	m := GenerateLattice(LatticeConfig{Nx: 8, Ny: 8, Nz: 8, Universe: latticeUniverse(), Jitter: 0.2, Seed: 1})
	if m.Len() != 512 {
		t.Fatalf("Len = %d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Interior vertices have 6 neighbors; corner vertices have 3.
	counts := map[int]int{}
	for _, adj := range m.Adjacency {
		counts[len(adj)]++
	}
	if counts[6] == 0 || counts[3] != 8 {
		t.Fatalf("unexpected degree distribution: %v", counts)
	}
	// Surface flags: a 8^3 lattice has 8^3 - 6^3 = 296 surface vertices.
	surf := 0
	for _, v := range m.Vertices {
		if v.Surface {
			surf++
		}
	}
	if surf != 512-216 {
		t.Fatalf("surface vertices = %d, want %d", surf, 512-216)
	}
	// Defaults.
	d := GenerateLattice(LatticeConfig{})
	if d.Len() != 1000 {
		t.Fatalf("default lattice size = %d", d.Len())
	}
}

func TestLatticeWithHole(t *testing.T) {
	hole := geom.NewAABB(geom.V(4, 4, 4), geom.V(6, 6, 6))
	m := GenerateLattice(LatticeConfig{Nx: 10, Ny: 10, Nz: 10, Universe: latticeUniverse(), Hole: hole, Seed: 2})
	if m.Len() >= 1000 {
		t.Fatalf("hole did not remove vertices: %d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Vertices adjacent to the hole must be flagged as surface.
	foundHoleSurface := false
	for i, v := range m.Vertices {
		if v.Surface && len(m.Adjacency[i]) < 6 && !onOuterBoundary(v.Pos, latticeUniverse()) {
			foundHoleSurface = true
			break
		}
	}
	if !foundHoleSurface {
		t.Fatal("no hole-boundary surface vertices found")
	}
}

func onOuterBoundary(p geom.Vec3, u geom.AABB) bool {
	const eps = 1e-9
	for i := 0; i < 3; i++ {
		if p.Axis(i) < u.Min.Axis(i)+eps || p.Axis(i) > u.Max.Axis(i)-eps {
			return true
		}
	}
	return false
}

func TestDLSExactOnConvexMesh(t *testing.T) {
	m := GenerateLattice(LatticeConfig{Nx: 15, Ny: 15, Nz: 15, Universe: latticeUniverse(), Jitter: 0.1, Seed: 3})
	d := NewDLS(m, 5)
	r := rand.New(rand.NewSource(4))
	for q := 0; q < 40; q++ {
		c := geom.V(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		box := geom.AABBFromCenter(c, geom.V(1.2, 1.2, 1.2))
		got := toSet(d.Range(box))
		want := toSet(m.BruteForceRange(box))
		if len(got) != len(want) {
			t.Fatalf("query %d: DLS %d results, want %d", q, len(got), len(want))
		}
		for v := range got {
			if !want[v] {
				t.Fatalf("query %d: unexpected vertex %d", q, v)
			}
		}
	}
	if d.Counters().NodeVisits() == 0 {
		t.Error("counters not populated")
	}
	if d.Seeds.Samples() == 0 {
		t.Error("seed index empty")
	}
}

func TestDLSExactAfterDeformationWithoutMaintenance(t *testing.T) {
	m := GenerateLattice(LatticeConfig{Nx: 12, Ny: 12, Nz: 12, Universe: latticeUniverse(), Jitter: 0.1, Seed: 5})
	d := NewDLS(m, 5)
	// Deform the mesh several times WITHOUT rebuilding the seed index.
	for step := 0; step < 5; step++ {
		m.Deform(0.05, int64(10+step))
	}
	r := rand.New(rand.NewSource(6))
	for q := 0; q < 30; q++ {
		c := geom.V(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		box := geom.AABBFromCenter(c, geom.V(1.5, 1.5, 1.5))
		got := toSet(d.Range(box))
		want := toSet(m.BruteForceRange(box))
		if len(got) != len(want) {
			t.Fatalf("query %d after deformation: DLS %d results, want %d", q, len(got), len(want))
		}
	}
}

func TestOctopusExactOnConcaveMesh(t *testing.T) {
	hole := geom.NewAABB(geom.V(3, 3, 0), geom.V(7, 7, 10))
	m := GenerateLattice(LatticeConfig{Nx: 14, Ny: 14, Nz: 14, Universe: latticeUniverse(), Hole: hole, Seed: 7})
	o := NewOctopus(m, 5)
	if o.SurfaceVertices() == 0 {
		t.Fatal("no surface vertices")
	}
	d := NewDLS(m, 5)
	r := rand.New(rand.NewSource(8))
	octExact := 0
	dlsMissed := false
	for q := 0; q < 50; q++ {
		c := geom.V(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		box := geom.AABBFromCenter(c, geom.V(1.5+r.Float64()*2, 1.5+r.Float64()*2, 1.5+r.Float64()*2))
		want := toSet(m.BruteForceRange(box))
		gotO := toSet(o.Range(box))
		gotD := toSet(d.Range(box))
		// OCTOPUS must be exact.
		if len(gotO) != len(want) {
			t.Fatalf("query %d: OCTOPUS %d results, want %d", q, len(gotO), len(want))
		}
		for v := range gotO {
			if !want[v] {
				t.Fatalf("query %d: OCTOPUS returned vertex %d not in range", q, v)
			}
		}
		octExact++
		// DLS must never return wrong vertices, but may miss some on a
		// concave mesh.
		for v := range gotD {
			if !want[v] {
				t.Fatalf("query %d: DLS returned vertex %d not in range", q, v)
			}
		}
		if len(gotD) < len(want) {
			dlsMissed = true
		}
	}
	if octExact == 0 {
		t.Fatal("no queries executed")
	}
	_ = dlsMissed // DLS may or may not miss depending on geometry; only OCTOPUS has the guarantee.
}

func TestSeedIndexBasics(t *testing.T) {
	m := GenerateLattice(LatticeConfig{Nx: 6, Ny: 6, Nz: 6, Universe: latticeUniverse(), Seed: 9})
	s := NewSeedIndex(m, 3)
	if s.Samples() == 0 || s.Samples() > 27 {
		t.Fatalf("Samples = %d", s.Samples())
	}
	if s.NearestSample(geom.V(5, 5, 5)) < 0 {
		t.Fatal("NearestSample returned -1 on non-empty index")
	}
	if got := s.SamplesIn(latticeUniverse()); len(got) != s.Samples() {
		t.Fatalf("SamplesIn(universe) = %d, want %d", len(got), s.Samples())
	}
	if got := s.SamplesIn(geom.NewAABB(geom.V(100, 100, 100), geom.V(101, 101, 101))); len(got) != 0 {
		t.Fatalf("SamplesIn(far away) = %d", len(got))
	}
	// Empty mesh.
	empty := &Mesh{Universe: latticeUniverse()}
	se := NewSeedIndex(empty, 0)
	if se.NearestSample(geom.V(0, 0, 0)) != -1 {
		t.Fatal("NearestSample on empty index should be -1")
	}
	dls := NewDLS(empty, 2)
	if got := dls.Range(geom.NewAABB(geom.V(0, 0, 0), geom.V(1, 1, 1))); got != nil {
		t.Fatal("DLS on empty mesh should return nil")
	}
}

func TestMeshValidateCatchesCorruption(t *testing.T) {
	m := GenerateLattice(LatticeConfig{Nx: 4, Ny: 4, Nz: 4, Universe: latticeUniverse(), Seed: 10})
	m.Adjacency[0] = append(m.Adjacency[0], 999)
	if err := m.Validate(); err == nil {
		t.Fatal("Validate missed out-of-range neighbor")
	}
	m2 := GenerateLattice(LatticeConfig{Nx: 4, Ny: 4, Nz: 4, Universe: latticeUniverse(), Seed: 10})
	m2.Adjacency[0] = append(m2.Adjacency[0], 5)
	if contains(m2.Adjacency[5], 0) {
		// make it asymmetric by removing the back edge if present
		var filtered []int32
		for _, x := range m2.Adjacency[5] {
			if x != 0 {
				filtered = append(filtered, x)
			}
		}
		m2.Adjacency[5] = filtered
	}
	if err := m2.Validate(); err == nil {
		t.Fatal("Validate missed asymmetric adjacency")
	}
	m3 := GenerateLattice(LatticeConfig{Nx: 4, Ny: 4, Nz: 4, Universe: latticeUniverse(), Seed: 10})
	m3.Adjacency = m3.Adjacency[:10]
	if err := m3.Validate(); err == nil {
		t.Fatal("Validate missed adjacency size mismatch")
	}
}

func TestFLATRangeOnScatteredData(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := 3000
	ids := make([]int64, n)
	pos := make([]geom.Vec3, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i) + 1000
		pos[i] = geom.V(r.Float64()*10, r.Float64()*10, r.Float64()*10)
	}
	f := NewFLAT(ids, pos, latticeUniverse(), FLATConfig{Neighbors: 10, SeedCells: 6})
	if f.Len() != n {
		t.Fatalf("Len = %d", f.Len())
	}
	// Recall measurement: FLAT is exact whenever the in-range elements are
	// connected to a seed through the neighborhood graph; with 10 links per
	// element and seed samples inside the query this should be nearly always.
	totalWant, totalGot := 0, 0
	for q := 0; q < 40; q++ {
		c := geom.V(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		box := geom.AABBFromCenter(c, geom.V(1.0, 1.0, 1.0))
		want := f.BruteForceRange(box)
		got := f.Range(box)
		wantSet := make(map[int64]bool, len(want))
		for _, id := range want {
			wantSet[id] = true
		}
		for _, id := range got {
			if !wantSet[id] {
				t.Fatalf("query %d: FLAT returned id %d outside the range", q, id)
			}
		}
		totalWant += len(want)
		totalGot += len(got)
	}
	if totalWant == 0 {
		t.Fatal("no results expected at all; enlarge the query")
	}
	recall := float64(totalGot) / float64(totalWant)
	if recall < 0.95 {
		t.Fatalf("FLAT recall %.3f below 0.95", recall)
	}
	// Positions can be updated without rebuilding; results follow the live
	// positions for the small, plasticity-scale movements FLAT targets.
	oldPos := f.Position(0)
	newPos := oldPos.Add(geom.V(0.05, 0.05, 0.05))
	f.UpdatePosition(0, newPos)
	if f.Position(0) != newPos {
		t.Fatal("UpdatePosition not applied")
	}
	got := f.Range(geom.AABBFromCenter(newPos, geom.V(0.7, 0.7, 0.7)))
	found := false
	for _, id := range got {
		if id == ids[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("moved element not found at its new position")
	}
	if f.Counters().NodeVisits() == 0 {
		t.Error("counters not populated")
	}
}
