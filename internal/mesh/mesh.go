// Package mesh implements the mesh-connectivity substrate and the
// connectivity-driven range-query strategies the paper points to as a way to
// avoid index maintenance entirely (Section 4.3): DLS (Papadomanolakis et
// al.), OCTOPUS (Tauheed et al.) and a FLAT-style neighborhood augmentation
// for non-mesh datasets.
//
// The core observation these methods share: the dataset itself is updated by
// the simulation at every step and is therefore always current; if queries
// navigate the dataset's connectivity instead of a spatial index, the only
// auxiliary structure is a small, approximate seed index that may be stale
// without affecting correctness.
package mesh

import (
	"fmt"
	"math/rand"

	"spatialsim/internal/geom"
	"spatialsim/internal/instrument"
)

// Vertex is one mesh vertex.
type Vertex struct {
	ID  int64
	Pos geom.Vec3
	// Surface marks vertices on the mesh boundary (including hole
	// boundaries); OCTOPUS uses them as additional query start points.
	Surface bool
}

// Mesh is an unstructured mesh represented by its vertices and vertex
// adjacency (the connectivity the simulation maintains anyway).
type Mesh struct {
	Vertices []Vertex
	// Adjacency lists neighbor vertex indices (not ids) for each vertex.
	Adjacency [][]int32
	Universe  geom.AABB
}

// Len returns the number of vertices.
func (m *Mesh) Len() int { return len(m.Vertices) }

// Validate checks structural consistency: adjacency is symmetric, indexes are
// in range and positions are finite.
func (m *Mesh) Validate() error {
	if len(m.Adjacency) != len(m.Vertices) {
		return fmt.Errorf("mesh: adjacency size %d != vertex count %d", len(m.Adjacency), len(m.Vertices))
	}
	for i, nbrs := range m.Adjacency {
		if !m.Vertices[i].Pos.IsFinite() {
			return fmt.Errorf("mesh: vertex %d has non-finite position", i)
		}
		for _, j := range nbrs {
			if j < 0 || int(j) >= len(m.Vertices) {
				return fmt.Errorf("mesh: vertex %d has out-of-range neighbor %d", i, j)
			}
			if int(j) == i {
				return fmt.Errorf("mesh: vertex %d is its own neighbor", i)
			}
			if !contains(m.Adjacency[j], int32(i)) {
				return fmt.Errorf("mesh: adjacency not symmetric between %d and %d", i, j)
			}
		}
	}
	return nil
}

func contains(xs []int32, v int32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// LatticeConfig configures GenerateLattice.
type LatticeConfig struct {
	// Nx, Ny, Nz are the lattice dimensions in vertices.
	Nx, Ny, Nz int
	// Universe is the spatial extent of the lattice.
	Universe geom.AABB
	// Jitter displaces each vertex by up to this fraction of the lattice
	// spacing, producing an unstructured-looking mesh while preserving
	// connectivity.
	Jitter float64
	// Hole, if non-empty, removes all vertices inside the box, producing a
	// concave mesh (the case DLS cannot handle but OCTOPUS can).
	Hole geom.AABB
	Seed int64
}

// GenerateLattice builds a 6-connected lattice mesh, the synthetic stand-in
// for the tetrahedral meshes of the paper's material-deformation and
// earthquake use cases.
func GenerateLattice(cfg LatticeConfig) *Mesh {
	if cfg.Nx <= 0 {
		cfg.Nx = 10
	}
	if cfg.Ny <= 0 {
		cfg.Ny = 10
	}
	if cfg.Nz <= 0 {
		cfg.Nz = 10
	}
	if !cfg.Universe.IsValid() {
		cfg.Universe = geom.NewAABB(geom.V(0, 0, 0), geom.V(1, 1, 1))
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	size := cfg.Universe.Size()
	dx := size.X / float64(max(cfg.Nx-1, 1))
	dy := size.Y / float64(max(cfg.Ny-1, 1))
	dz := size.Z / float64(max(cfg.Nz-1, 1))

	// First pass: decide which lattice sites exist (hole removal) and assign
	// dense vertex indices.
	indexOf := make(map[[3]int]int32)
	var vertices []Vertex
	hole := cfg.Hole
	useHole := hole.IsValid() && hole.Volume() > 0
	for z := 0; z < cfg.Nz; z++ {
		for y := 0; y < cfg.Ny; y++ {
			for x := 0; x < cfg.Nx; x++ {
				p := geom.V(
					cfg.Universe.Min.X+float64(x)*dx,
					cfg.Universe.Min.Y+float64(y)*dy,
					cfg.Universe.Min.Z+float64(z)*dz,
				)
				if useHole && hole.ContainsPoint(p) {
					continue
				}
				jp := p
				if cfg.Jitter > 0 {
					jp = p.Add(geom.V(
						(r.Float64()*2-1)*cfg.Jitter*dx,
						(r.Float64()*2-1)*cfg.Jitter*dy,
						(r.Float64()*2-1)*cfg.Jitter*dz,
					))
				}
				indexOf[[3]int{x, y, z}] = int32(len(vertices))
				vertices = append(vertices, Vertex{ID: int64(len(vertices)), Pos: jp})
			}
		}
	}
	m := &Mesh{Vertices: vertices, Adjacency: make([][]int32, len(vertices)), Universe: cfg.Universe}
	// Second pass: connectivity and surface flags.
	for key, vi := range indexOf {
		x, y, z := key[0], key[1], key[2]
		neighbors := [][3]int{
			{x - 1, y, z}, {x + 1, y, z},
			{x, y - 1, z}, {x, y + 1, z},
			{x, y, z - 1}, {x, y, z + 1},
		}
		surface := false
		for _, nk := range neighbors {
			if nk[0] < 0 || nk[0] >= cfg.Nx || nk[1] < 0 || nk[1] >= cfg.Ny || nk[2] < 0 || nk[2] >= cfg.Nz {
				surface = true
				continue
			}
			nj, ok := indexOf[nk]
			if !ok {
				// Neighbor removed by the hole: this vertex is on the hole
				// boundary, i.e. on the surface.
				surface = true
				continue
			}
			m.Adjacency[vi] = append(m.Adjacency[vi], nj)
		}
		m.Vertices[vi].Surface = surface
	}
	return m
}

// Deform applies a small random displacement to every vertex (bounded by
// maxStep), simulating one deformation time step. Connectivity is untouched —
// which is precisely why connectivity-driven queries need no index
// maintenance.
func (m *Mesh) Deform(maxStep float64, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for i := range m.Vertices {
		d := geom.V(
			(r.Float64()*2-1)*maxStep,
			(r.Float64()*2-1)*maxStep,
			(r.Float64()*2-1)*maxStep,
		)
		m.Vertices[i].Pos = m.Vertices[i].Pos.Add(d)
	}
}

// BruteForceRange returns the indices of all vertices inside the box; the
// ground truth used by tests and experiments.
func (m *Mesh) BruteForceRange(box geom.AABB) []int32 {
	var out []int32
	for i := range m.Vertices {
		if box.ContainsPoint(m.Vertices[i].Pos) {
			out = append(out, int32(i))
		}
	}
	return out
}

// TypicalEdgeLength returns the average edge length over a sample of the
// mesh, used as the expansion margin of the connectivity-driven queries.
func (m *Mesh) TypicalEdgeLength() float64 {
	var sum float64
	var n int
	step := len(m.Vertices)/256 + 1
	for i := 0; i < len(m.Vertices); i += step {
		for _, j := range m.Adjacency[i] {
			sum += m.Vertices[i].Pos.Dist(m.Vertices[j].Pos)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// expandInRange runs a BFS over mesh connectivity starting from the given
// seed vertex indices. The traversal continues through any vertex within
// `margin` of the box (so that jittered or deformed meshes whose strictly
// in-range vertices form a disconnected subgraph are still fully covered),
// but only vertices strictly inside the box are reported. Charges traversal
// work to counters if non-nil.
func (m *Mesh) expandInRange(box geom.AABB, seeds []int32, margin float64, counters *instrument.Counters) []int32 {
	visited := make(map[int32]bool, len(seeds)*4)
	var queue []int32
	var out []int32
	margin2 := margin * margin
	push := func(v int32) {
		if visited[v] {
			return
		}
		visited[v] = true
		if counters != nil {
			counters.AddElemIntersectTests(1)
		}
		pos := m.Vertices[v].Pos
		if box.ContainsPoint(pos) {
			out = append(out, v)
		}
		if box.Distance2ToPoint(pos) <= margin2 {
			queue = append(queue, v)
		}
	}
	for _, s := range seeds {
		push(s)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if counters != nil {
			counters.AddNodeVisits(1)
		}
		for _, n := range m.Adjacency[v] {
			push(n)
		}
	}
	return out
}
