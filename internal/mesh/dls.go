package mesh

import (
	"math"

	"spatialsim/internal/geom"
	"spatialsim/internal/instrument"
)

// SeedIndex is the small, approximate index the connectivity-driven methods
// use to find a starting vertex near a query. It samples one vertex per cell
// of a coarse uniform grid at construction time and is deliberately never
// updated when the mesh deforms: stale sample positions only make the start
// point slightly worse, they never affect result correctness.
type SeedIndex struct {
	cells    int
	universe geom.AABB
	cellSize geom.Vec3
	// sample[cell] is a vertex index whose construction-time position fell in
	// the cell, or -1.
	sample []int32
	// pos records the construction-time position of each sample (kept so the
	// index does not need to chase the live mesh).
	pos map[int32]geom.Vec3
}

// NewSeedIndex builds a seed index over the mesh with the given per-dimension
// resolution (default 8).
func NewSeedIndex(m *Mesh, cells int) *SeedIndex {
	if cells <= 0 {
		cells = 8
	}
	s := &SeedIndex{
		cells:    cells,
		universe: m.Universe,
		sample:   make([]int32, cells*cells*cells),
		pos:      make(map[int32]geom.Vec3),
	}
	sz := m.Universe.Size()
	s.cellSize = geom.V(sz.X/float64(cells), sz.Y/float64(cells), sz.Z/float64(cells))
	for i := range s.sample {
		s.sample[i] = -1
	}
	for i := range m.Vertices {
		c := s.cellOf(m.Vertices[i].Pos)
		if s.sample[c] == -1 {
			s.sample[c] = int32(i)
			s.pos[int32(i)] = m.Vertices[i].Pos
		}
	}
	return s
}

func (s *SeedIndex) cellOf(p geom.Vec3) int {
	var c [3]int
	for i := 0; i < 3; i++ {
		v := int((p.Axis(i) - s.universe.Min.Axis(i)) / s.cellSize.Axis(i))
		if v < 0 {
			v = 0
		}
		if v >= s.cells {
			v = s.cells - 1
		}
		c[i] = v
	}
	return (c[2]*s.cells+c[1])*s.cells + c[0]
}

// NearestSample returns the sampled vertex whose construction-time position is
// nearest to p, or -1 if the index is empty.
func (s *SeedIndex) NearestSample(p geom.Vec3) int32 {
	best := int32(-1)
	bestD := math.Inf(1)
	for v, pos := range s.pos {
		if d := pos.Dist2(p); d < bestD {
			best, bestD = v, d
		}
	}
	return best
}

// SamplesIn returns the sampled vertices whose construction-time positions lie
// inside box (approximate: positions may have drifted since construction).
func (s *SeedIndex) SamplesIn(box geom.AABB) []int32 {
	var out []int32
	for v, pos := range s.pos {
		if box.ContainsPoint(pos) {
			out = append(out, v)
		}
	}
	return out
}

// Samples returns the number of sampled vertices.
func (s *SeedIndex) Samples() int { return len(s.pos) }

// DLS implements the Directed Local Search strategy: an approximate seed
// index provides a start vertex, a greedy walk over mesh connectivity moves
// the start toward the query region, and a constrained breadth-first
// expansion collects every vertex inside the range. Exact for convex meshes;
// concave meshes (holes) can cut the walk off, which is the limitation
// OCTOPUS lifts.
type DLS struct {
	Mesh     *Mesh
	Seeds    *SeedIndex
	counters instrument.Counters
}

// NewDLS returns a DLS query processor over the mesh.
func NewDLS(m *Mesh, seedCells int) *DLS {
	return &DLS{Mesh: m, Seeds: NewSeedIndex(m, seedCells)}
}

// Counters returns traversal counters.
func (d *DLS) Counters() *instrument.Counters { return &d.counters }

// Range returns the indices of the mesh vertices inside box.
func (d *DLS) Range(box geom.AABB) []int32 {
	start := d.walkToward(box)
	if start < 0 {
		return nil
	}
	return d.Mesh.expandInRange(box, []int32{start}, d.Mesh.TypicalEdgeLength(), &d.counters)
}

// walkToward greedily walks from the seed nearest to the query center toward
// the query box, following the neighbor that most reduces the distance to the
// box, and returns the reached vertex (ideally inside the box).
func (d *DLS) walkToward(box geom.AABB) int32 {
	cur := d.Seeds.NearestSample(box.Center())
	if cur < 0 {
		return -1
	}
	for steps := 0; steps < len(d.Mesh.Vertices); steps++ {
		d.counters.AddNodeVisits(1)
		curDist := box.Distance2ToPoint(d.Mesh.Vertices[cur].Pos)
		if curDist == 0 {
			return cur
		}
		best := int32(-1)
		bestDist := curDist
		for _, n := range d.Mesh.Adjacency[cur] {
			d.counters.AddElemIntersectTests(1)
			if dist := box.Distance2ToPoint(d.Mesh.Vertices[n].Pos); dist < bestDist {
				best, bestDist = n, dist
			}
		}
		if best < 0 {
			// Local minimum: the walk cannot get closer (concave mesh or the
			// box lies outside the mesh). Return the closest vertex found.
			return cur
		}
		cur = best
	}
	return cur
}

// Octopus implements the OCTOPUS strategy: like DLS, but queries additionally
// start from every surface vertex currently inside the range, which restores
// completeness on concave meshes (result components that touch a hole or the
// outer boundary are reached from the surface even when the greedy walk is
// cut off).
type Octopus struct {
	Mesh     *Mesh
	Seeds    *SeedIndex
	surface  []int32
	counters instrument.Counters
}

// NewOctopus returns an OCTOPUS query processor over the mesh.
func NewOctopus(m *Mesh, seedCells int) *Octopus {
	o := &Octopus{Mesh: m, Seeds: NewSeedIndex(m, seedCells)}
	for i := range m.Vertices {
		if m.Vertices[i].Surface {
			o.surface = append(o.surface, int32(i))
		}
	}
	return o
}

// Counters returns traversal counters.
func (o *Octopus) Counters() *instrument.Counters { return &o.counters }

// SurfaceVertices returns the number of surface vertices used as potential
// query start points.
func (o *Octopus) SurfaceVertices() int { return len(o.surface) }

// Range returns the indices of the mesh vertices inside box.
func (o *Octopus) Range(box geom.AABB) []int32 {
	var seeds []int32
	// Surface start points currently inside the range (checked against live
	// positions — the surface list itself never changes).
	for _, v := range o.surface {
		o.counters.AddElemIntersectTests(1)
		if box.ContainsPoint(o.Mesh.Vertices[v].Pos) {
			seeds = append(seeds, v)
		}
	}
	// Plus the DLS-style walked start, for ranges in the interior.
	d := DLS{Mesh: o.Mesh, Seeds: o.Seeds}
	if start := d.walkToward(box); start >= 0 {
		seeds = append(seeds, start)
	}
	o.counters.AddNodeVisits(d.counters.NodeVisits())
	return o.Mesh.expandInRange(box, seeds, o.Mesh.TypicalEdgeLength(), &o.counters)
}
