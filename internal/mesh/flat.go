package mesh

import (
	"spatialsim/internal/geom"
	"spatialsim/internal/instrument"
	"spatialsim/internal/kdtree"
)

// FLAT augments a dataset that has no natural mesh connectivity with
// neighborhood links (each element is linked to its k nearest neighbors at
// construction time) and then answers range queries by seeded graph
// expansion, the idea the paper attributes to FLAT ("adds connectivity
// (neighborhood) information to the dataset and then uses it to execute
// spatial queries") and suggests carrying over to memory.
//
// Like the mesh methods, the connectivity and the coarse seed index are built
// once; element positions may drift afterwards (the live positions are always
// consulted during expansion), so no per-step maintenance is required.
type FLAT struct {
	positions []geom.Vec3 // live positions, updated via UpdatePosition
	ids       []int64
	adjacency [][]int32
	seeds     *SeedIndex
	universe  geom.AABB
	// linkLength is the average construction-time distance to the nearest
	// linked neighbor; expansion traverses elements within this margin of the
	// query so that in-range elements connected only through just-outside
	// elements are still reached.
	linkLength float64
	counters   instrument.Counters
}

// FLATConfig configures NewFLAT.
type FLATConfig struct {
	// Neighbors is the number of neighborhood links per element (default 8).
	Neighbors int
	// SeedCells is the per-dimension resolution of the seed index (default 8).
	SeedCells int
}

// NewFLAT builds the neighborhood graph and seed index over the elements.
func NewFLAT(ids []int64, positions []geom.Vec3, universe geom.AABB, cfg FLATConfig) *FLAT {
	if cfg.Neighbors <= 0 {
		cfg.Neighbors = 8
	}
	if cfg.SeedCells <= 0 {
		cfg.SeedCells = 8
	}
	f := &FLAT{
		positions: append([]geom.Vec3(nil), positions...),
		ids:       append([]int64(nil), ids...),
		adjacency: make([][]int32, len(positions)),
		universe:  universe,
	}
	// kNN connectivity via a KD-Tree over construction-time positions.
	pts := make([]kdtree.Point, len(positions))
	for i := range positions {
		pts[i] = kdtree.Point{ID: int64(i), Pos: positions[i]}
	}
	kt := kdtree.Build(pts)
	var linkSum float64
	var linkN int
	for i := range positions {
		nbrs := kt.KNN(positions[i], cfg.Neighbors+1)
		for _, n := range nbrs {
			if n.ID == int64(i) {
				continue
			}
			f.adjacency[i] = append(f.adjacency[i], int32(n.ID))
			linkSum += positions[i].Dist(n.Pos)
			linkN++
		}
	}
	if linkN > 0 {
		f.linkLength = linkSum / float64(linkN)
	}
	// Symmetrize so expansion can traverse links in both directions.
	for i := range f.adjacency {
		for _, j := range f.adjacency[i] {
			if !contains(f.adjacency[j], int32(i)) {
				f.adjacency[j] = append(f.adjacency[j], int32(i))
			}
		}
	}
	// Seed index over a temporary mesh view.
	view := &Mesh{Vertices: make([]Vertex, len(positions)), Universe: universe}
	for i := range positions {
		view.Vertices[i] = Vertex{ID: int64(i), Pos: positions[i]}
	}
	f.seeds = NewSeedIndex(view, cfg.SeedCells)
	return f
}

// Len returns the number of elements.
func (f *FLAT) Len() int { return len(f.positions) }

// Counters returns traversal counters.
func (f *FLAT) Counters() *instrument.Counters { return &f.counters }

// UpdatePosition records an element's new position. Only the live position
// array is touched; connectivity and seeds stay as built.
func (f *FLAT) UpdatePosition(idx int, p geom.Vec3) { f.positions[idx] = p }

// Position returns the live position of element idx.
func (f *FLAT) Position(idx int) geom.Vec3 { return f.positions[idx] }

// Range returns the ids of all elements whose live position lies in box,
// found by seeded expansion over the neighborhood graph.
func (f *FLAT) Range(box geom.AABB) []int64 {
	// Seeds: every sample inside the box (by construction-time position) plus
	// the sample nearest to the box center, walked toward the box.
	seeds := f.seeds.SamplesIn(box)
	if s := f.seeds.NearestSample(box.Center()); s >= 0 {
		seeds = append(seeds, f.walkToward(int(s), box))
	}
	visited := make(map[int32]bool)
	var queue []int32
	var out []int64
	margin2 := f.linkLength * f.linkLength
	push := func(v int32) {
		if v < 0 || visited[v] {
			return
		}
		visited[v] = true
		f.counters.AddElemIntersectTests(1)
		if box.ContainsPoint(f.positions[v]) {
			out = append(out, f.ids[v])
		}
		if box.Distance2ToPoint(f.positions[v]) <= margin2 {
			queue = append(queue, v)
		}
	}
	for _, s := range seeds {
		push(s)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		f.counters.AddNodeVisits(1)
		for _, n := range f.adjacency[v] {
			push(n)
		}
	}
	return out
}

// walkToward greedily follows neighborhood links from start toward the box
// and returns the closest element reached.
func (f *FLAT) walkToward(start int, box geom.AABB) int32 {
	cur := int32(start)
	for steps := 0; steps < len(f.positions); steps++ {
		curDist := box.Distance2ToPoint(f.positions[cur])
		if curDist == 0 {
			return cur
		}
		best := int32(-1)
		bestDist := curDist
		for _, n := range f.adjacency[cur] {
			if d := box.Distance2ToPoint(f.positions[n]); d < bestDist {
				best, bestDist = n, d
			}
		}
		if best < 0 {
			return cur
		}
		cur = best
	}
	return cur
}

// BruteForceRange returns the ids of all elements whose live position lies in
// box; the ground truth used by tests and experiments.
func (f *FLAT) BruteForceRange(box geom.AABB) []int64 {
	var out []int64
	for i, p := range f.positions {
		if box.ContainsPoint(p) {
			out = append(out, f.ids[i])
		}
	}
	return out
}
