package join

import (
	"math/rand"
	"reflect"
	"testing"

	"spatialsim/internal/geom"
	"spatialsim/internal/index"
)

// TestPlannerPicksFromStats feeds the planner contrasting input statistics
// and checks that each regime gets the algorithm the paper's comparison
// motivates.
func TestPlannerPicksFromStats(t *testing.T) {
	pl := Planner{}
	cube := geom.NewAABB(geom.V(0, 0, 0), geom.V(100, 100, 100))
	base := Stats{
		CardA: 50000, CardB: 50000,
		MBRA: cube, MBRB: cube,
		CoverageA: 0.2, CoverageB: 0.2,
		OverlapRatio: 1, Elongation: 1,
	}

	cases := []struct {
		name   string
		mutate func(Stats) Stats
		want   Algorithm
	}{
		{"tiny inputs -> nested loop", func(st Stats) Stats {
			st.CardA, st.CardB = 40, 40
			return st
		}, AlgoNestedLoop},
		{"disjoint MBRs -> synchronized rtree", func(st Stats) Stats {
			st.MBRB = geom.NewAABB(geom.V(1000, 0, 0), geom.V(1100, 100, 100))
			st.OverlapRatio = 0
			return st
		}, AlgoRTree},
		{"cardinality skew -> TOUCH", func(st Stats) Stats {
			st.CardA = 2000
			return st
		}, AlgoTOUCH},
		{"effectively 1D -> plane sweep", func(st Stats) Stats {
			st.Elongation = 40
			return st
		}, AlgoPlaneSweep},
		{"dense overlap -> TOUCH", func(st Stats) Stats {
			st.CoverageA, st.CoverageB = 5, 5
			return st
		}, AlgoTOUCH},
		{"uniform balanced -> grid", func(st Stats) Stats {
			return st
		}, AlgoGrid},
	}
	for _, tc := range cases {
		if got := pl.Pick(tc.mutate(base)); got != tc.want {
			t.Errorf("%s: picked %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestComputeStatsRegimes builds concrete datasets for the planner regimes
// and checks the derived statistics drive the expected picks end to end.
func TestComputeStatsRegimes(t *testing.T) {
	pl := Planner{}

	// Two far-apart clusters: overlap ratio near zero -> rtree.
	as := randomItems(500, 31, geom.Vec3{})
	bs := randomItems(500, 32, geom.V(5000, 0, 0))
	if st := ComputeStats(as, bs); st.OverlapRatio > 0.01 {
		t.Fatalf("disjoint inputs overlap ratio = %v", st.OverlapRatio)
	} else if got := pl.Pick(st); got != AlgoRTree {
		t.Fatalf("disjoint inputs picked %v, want %v", got, AlgoRTree)
	}

	// Elements along a line: elongated MBR -> sweep.
	r := rand.New(rand.NewSource(33))
	line := make([]index.Item, 2000)
	for i := range line {
		c := geom.V(r.Float64()*10000, r.Float64()*20, r.Float64()*20)
		line[i] = index.Item{ID: int64(i), Box: geom.AABBFromCenter(c, geom.V(0.5, 0.5, 0.5))}
	}
	if got := pl.Pick(ComputeSelfStats(line)); got != AlgoPlaneSweep {
		t.Fatalf("collinear input picked %v, want %v", got, AlgoPlaneSweep)
	}

	// Uniform cube self-join -> grid.
	uniform := randomItems(5000, 34, geom.Vec3{})
	if got := pl.Pick(ComputeSelfStats(uniform)); got != AlgoGrid {
		t.Fatalf("uniform input picked %v, want %v", got, AlgoGrid)
	}

	// Tiny input -> nested loop.
	if got := pl.Pick(ComputeSelfStats(uniform[:20])); got != AlgoNestedLoop {
		t.Fatalf("tiny input picked %v, want %v", got, AlgoNestedLoop)
	}
}

// TestPlanTasksPartitionWork asserts that running tasks individually emits
// every pair exactly once — the reference-point technique (grid) and the
// emission-site filters (tree joins) make task outputs globally disjoint, so
// no dedup pass is needed between tasks.
func TestPlanTasksPartitionWork(t *testing.T) {
	items := randomItems(800, 35, geom.Vec3{})
	opts := Options{Eps: 0.8}
	want := canon(SelfNestedLoop(items, opts))
	for _, algo := range []Algorithm{AlgoNestedLoop, AlgoPlaneSweep, AlgoGrid, AlgoRTree, AlgoTOUCH} {
		p := Planner{}.PlanSelfWith(algo, items, opts)
		var raw []Pair
		for task := 0; task < p.Tasks(); task++ {
			raw = p.RunTask(task, nil, raw)
		}
		SortPairs(raw)
		for i := 1; i < len(raw); i++ {
			if raw[i] == raw[i-1] {
				t.Fatalf("%v emitted duplicate pair %+v", algo, raw[i])
			}
		}
		if !reflect.DeepEqual(append([]Pair(nil), raw...), want) {
			t.Fatalf("%v raw task output: %d pairs, want %d", algo, len(raw), len(want))
		}
		p.Close()
	}
}

// TestPlanTaskGranularity: plans over non-trivial inputs must decompose into
// enough tasks to keep a worker pool busy.
func TestPlanTaskGranularity(t *testing.T) {
	items := randomItems(5000, 36, geom.Vec3{})
	for _, algo := range []Algorithm{AlgoNestedLoop, AlgoPlaneSweep, AlgoGrid, AlgoRTree, AlgoTOUCH} {
		p := Planner{}.PlanSelfWith(algo, items, Options{Eps: 0.5})
		if p.Tasks() < 8 {
			t.Errorf("%v: only %d tasks for 5000 elements", algo, p.Tasks())
		}
		p.Close()
	}
}

// TestPlanEmptyInputs: degenerate plans have zero tasks and empty results.
func TestPlanEmptyInputs(t *testing.T) {
	items := randomItems(5, 37, geom.Vec3{})
	for _, algo := range []Algorithm{AlgoNestedLoop, AlgoPlaneSweep, AlgoGrid, AlgoRTree, AlgoTOUCH} {
		p := Planner{}.PlanWith(algo, nil, items, Options{})
		if p.Tasks() != 0 || len(p.Run()) != 0 {
			t.Errorf("%v: empty input produced %d tasks, %d pairs", algo, p.Tasks(), len(p.Run()))
		}
		p.Close()
		p = Planner{}.PlanSelfWith(algo, items[:1], Options{Eps: 100})
		if p.Tasks() != 0 || len(p.Run()) != 0 {
			t.Errorf("%v: single-element self plan produced pairs", algo)
		}
		p.Close()
	}
}

// TestPartitionerBufferReuse: repeated grid joins must reuse the pooled
// cell-list buffers and keep producing identical results.
func TestPartitionerBufferReuse(t *testing.T) {
	items := randomItems(600, 38, geom.Vec3{})
	opts := Options{Eps: 0.6}
	want := SelfGridJoin(items, opts, GridJoinConfig{})
	for i := 0; i < 5; i++ {
		if got := SelfGridJoin(items, opts, GridJoinConfig{}); !reflect.DeepEqual(got, want) {
			t.Fatalf("iteration %d: grid join diverged after buffer reuse", i)
		}
	}
	// Different resolution through the same pool must not leak state.
	as := randomItems(300, 39, geom.Vec3{})
	bs := randomItems(300, 40, geom.V(0.2, 0.2, 0.2))
	for i := range bs {
		bs[i].ID += 50000
	}
	wantAB := GridJoin(as, bs, opts, GridJoinConfig{CellsPerDim: 6})
	if got := GridJoin(as, bs, opts, GridJoinConfig{CellsPerDim: 6}); !reflect.DeepEqual(got, wantAB) {
		t.Fatal("binary grid join diverged after buffer reuse")
	}
}

// TestMergeSortedPairs covers the gather-side merge dedup.
func TestMergeSortedPairs(t *testing.T) {
	runs := [][]Pair{
		{{1, 2}, {3, 4}, {5, 6}},
		{{1, 2}, {2, 3}},
		nil,
		{{0, 9}, {5, 6}},
	}
	got := MergeSortedPairs(runs, nil)
	want := []Pair{{0, 9}, {1, 2}, {2, 3}, {3, 4}, {5, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeSortedPairs = %v, want %v", got, want)
	}
	if out := MergeSortedPairs(nil, nil); len(out) != 0 {
		t.Fatal("empty merge returned pairs")
	}
}

// TestParseAlgorithm covers the CLI/HTTP name resolution.
func TestParseAlgorithm(t *testing.T) {
	for _, a := range []Algorithm{AlgoNestedLoop, AlgoPlaneSweep, AlgoGrid, AlgoRTree, AlgoTOUCH} {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Error("ParseAlgorithm accepted bogus name")
	}
}

// TestTOUCHBuildsOverSmallerSide: a skewed binary TOUCH plan must build the
// hierarchy over the small input and probe with the large one (the planner's
// rationale for picking it), while preserving the (as, bs) pair orientation
// and decomposing tasks over the large probe side.
func TestTOUCHBuildsOverSmallerSide(t *testing.T) {
	big := randomItems(4000, 41, geom.Vec3{})
	small := randomItems(120, 42, geom.V(0.2, 0.2, 0.2))
	for i := range small {
		small[i].ID += 1000000
	}
	opts := Options{Eps: 0.8}
	want := canonUnordered(NestedLoop(big, small, opts))
	if len(want) == 0 {
		t.Fatal("ground truth empty")
	}

	// bs smaller: build/probe are swapped internally.
	p := Planner{}.PlanWith(AlgoTOUCH, big, small, opts)
	if p.Tasks() < 8 {
		t.Fatalf("skewed TOUCH plan decomposed into only %d tasks — probing with the small side?", p.Tasks())
	}
	got := p.Run()
	p.Close()
	for _, pr := range got {
		if pr.A >= 1000000 || pr.B < 1000000 {
			t.Fatalf("pair %+v lost the (as, bs) orientation", pr)
		}
	}
	if !reflect.DeepEqual(canonUnordered(got), want) {
		t.Fatalf("swapped TOUCH: %d pairs, want %d", len(got), len(want))
	}

	// as smaller: no swap, same result set.
	p = Planner{}.PlanWith(AlgoTOUCH, small, big, opts)
	rev := p.Run()
	p.Close()
	for _, pr := range rev {
		if pr.A < 1000000 || pr.B >= 1000000 {
			t.Fatalf("pair %+v lost the (as, bs) orientation", pr)
		}
	}
	if len(rev) != len(got) {
		t.Fatalf("orientation-reversed join found %d pairs, want %d", len(rev), len(got))
	}
}
