// Package join implements the in-memory spatial join algorithms the paper
// surveys and compares (Sections 3.2, 3.3 and 4.3): the nested-loop baseline,
// the plane-sweep join, a PBSM-style uniform-grid partition join, a
// synchronized R-Tree traversal join, and a TOUCH-style join based on
// hierarchical data-oriented partitioning.
//
// All joins compute an epsilon distance join over bounding boxes: a pair
// (a, b) is reported when the boxes are within Eps of each other (Eps = 0
// yields the intersection join). A user-supplied refinement predicate can be
// applied to the exact geometry, which is how the neuroscience synapse
// detection use case (cylinders within a threshold distance) is expressed.
//
// Every algorithm charges pairwise candidate comparisons to the provided
// counters, because the number of comparisons is, as the paper notes, "the
// major bulk of work for in-memory spatial joins".
package join

import (
	"sort"

	"spatialsim/internal/geom"
	"spatialsim/internal/index"
	"spatialsim/internal/instrument"
)

// Pair is one join result: the ids of the two matching elements. For
// self-joins A < B always holds.
type Pair struct {
	A, B int64
}

// Options configures a join run.
type Options struct {
	// Eps is the distance threshold between boxes; 0 means boxes must
	// intersect.
	Eps float64
	// Refine, if non-nil, is applied to candidate pairs that pass the box
	// filter; only pairs for which it returns true are reported.
	Refine func(a, b index.Item) bool
	// Counters, if non-nil, receives comparison counts.
	Counters *instrument.Counters
}

func (o Options) match(a, b index.Item) bool {
	if o.Counters != nil {
		o.Counters.AddComparisons(1)
	}
	if a.Box.Distance2(b.Box) > o.Eps*o.Eps {
		return false
	}
	if o.Refine != nil {
		if o.Counters != nil {
			o.Counters.AddElemIntersectTests(1)
		}
		return o.Refine(a, b)
	}
	return true
}

// NestedLoop is the quadratic baseline join between two sets.
func NestedLoop(as, bs []index.Item, opts Options) []Pair {
	var out []Pair
	for _, a := range as {
		for _, b := range bs {
			if opts.match(a, b) {
				out = append(out, Pair{A: a.ID, B: b.ID})
			}
		}
	}
	return out
}

// SelfNestedLoop is the quadratic baseline self-join; each unordered pair is
// tested once and reported with A < B.
func SelfNestedLoop(items []index.Item, opts Options) []Pair {
	var out []Pair
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			if opts.match(items[i], items[j]) {
				out = append(out, orderPair(items[i].ID, items[j].ID))
			}
		}
	}
	return out
}

// PlaneSweep joins two sets by sweeping a plane along the X axis: both sets
// are sorted by Box.Min.X and only elements whose X extents (expanded by Eps)
// overlap are compared. As the paper observes, the sweep does not ensure that
// only spatially close objects are compared — elements far apart in Y or Z
// but overlapping in X still generate comparisons.
func PlaneSweep(as, bs []index.Item, opts Options) []Pair {
	if len(as) == 0 || len(bs) == 0 {
		return nil
	}
	p := Planner{}.PlanWith(AlgoPlaneSweep, as, bs, opts)
	defer p.Close()
	return p.Run()
}

// SelfPlaneSweep is the plane-sweep self-join.
func SelfPlaneSweep(items []index.Item, opts Options) []Pair {
	if len(items) < 2 {
		return nil
	}
	p := Planner{}.PlanSelfWith(AlgoPlaneSweep, items, opts)
	defer p.Close()
	return p.Run()
}

func sortByMinX(items []index.Item) {
	sort.Slice(items, func(i, j int) bool {
		return items[i].Box.Min.X < items[j].Box.Min.X
	})
}

func orderPair(a, b int64) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// pairLess is the canonical (A, then B) pair order.
func pairLess(a, b Pair) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

// pairSlice sorts pairs by (A, B) without a per-call closure.
type pairSlice []Pair

func (s pairSlice) Len() int           { return len(s) }
func (s pairSlice) Less(i, j int) bool { return pairLess(s[i], s[j]) }
func (s pairSlice) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// SortPairs sorts a pair list in place into canonical (A, then B) order.
func SortPairs(pairs []Pair) { sort.Sort(pairSlice(pairs)) }

// DedupPairs sorts and deduplicates a pair list in place and returns it —
// entirely allocation-free (no hash table): canonical sort, then one
// compaction pass.
func DedupPairs(pairs []Pair) []Pair {
	SortPairs(pairs)
	out := pairs[:0]
	for i, p := range pairs {
		if i == 0 || p != pairs[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// MergeSortedPairs merges several individually sorted pair runs into out
// (appended and returned), dropping duplicates across runs — the gather step
// of the parallel join: workers sort their private buffers, then a k-way
// heap merge emits the union in one O(pairs·log runs) pass. The runs must
// each be sorted in SortPairs order.
func MergeSortedPairs(runs [][]Pair, out []Pair) []Pair {
	// Min-heap of run indices, keyed by each run's head pair.
	heads := make([]int, len(runs))
	heap := make([]int, 0, len(runs))
	for i := range runs {
		if len(runs[i]) > 0 {
			heap = append(heap, i)
		}
	}
	lessRun := func(i, j int) bool { return pairLess(runs[i][heads[i]], runs[j][heads[j]]) }
	siftDown := func(at int) {
		for {
			l, r := 2*at+1, 2*at+2
			next := at
			if l < len(heap) && lessRun(heap[l], heap[next]) {
				next = l
			}
			if r < len(heap) && lessRun(heap[r], heap[next]) {
				next = r
			}
			if next == at {
				return
			}
			heap[at], heap[next] = heap[next], heap[at]
			at = next
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(heap) > 0 {
		run := heap[0]
		p := runs[run][heads[run]]
		heads[run]++
		if heads[run] >= len(runs[run]) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown(0)
		if len(out) == 0 || out[len(out)-1] != p {
			out = append(out, p)
		}
	}
	return out
}

// universeOf returns the union of the boxes of both inputs.
func universeOf(as, bs []index.Item) geom.AABB {
	u := geom.EmptyAABB()
	for _, it := range as {
		u = u.Union(it.Box)
	}
	for _, it := range bs {
		u = u.Union(it.Box)
	}
	return u
}
