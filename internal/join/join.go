// Package join implements the in-memory spatial join algorithms the paper
// surveys and compares (Sections 3.2, 3.3 and 4.3): the nested-loop baseline,
// the plane-sweep join, a PBSM-style uniform-grid partition join, a
// synchronized R-Tree traversal join, and a TOUCH-style join based on
// hierarchical data-oriented partitioning.
//
// All joins compute an epsilon distance join over bounding boxes: a pair
// (a, b) is reported when the boxes are within Eps of each other (Eps = 0
// yields the intersection join). A user-supplied refinement predicate can be
// applied to the exact geometry, which is how the neuroscience synapse
// detection use case (cylinders within a threshold distance) is expressed.
//
// Every algorithm charges pairwise candidate comparisons to the provided
// counters, because the number of comparisons is, as the paper notes, "the
// major bulk of work for in-memory spatial joins".
package join

import (
	"sort"

	"spatialsim/internal/geom"
	"spatialsim/internal/index"
	"spatialsim/internal/instrument"
)

// Pair is one join result: the ids of the two matching elements. For
// self-joins A < B always holds.
type Pair struct {
	A, B int64
}

// Options configures a join run.
type Options struct {
	// Eps is the distance threshold between boxes; 0 means boxes must
	// intersect.
	Eps float64
	// Refine, if non-nil, is applied to candidate pairs that pass the box
	// filter; only pairs for which it returns true are reported.
	Refine func(a, b index.Item) bool
	// Counters, if non-nil, receives comparison counts.
	Counters *instrument.Counters
}

func (o Options) match(a, b index.Item) bool {
	if o.Counters != nil {
		o.Counters.AddComparisons(1)
	}
	if a.Box.Distance2(b.Box) > o.Eps*o.Eps {
		return false
	}
	if o.Refine != nil {
		if o.Counters != nil {
			o.Counters.AddElemIntersectTests(1)
		}
		return o.Refine(a, b)
	}
	return true
}

// NestedLoop is the quadratic baseline join between two sets.
func NestedLoop(as, bs []index.Item, opts Options) []Pair {
	var out []Pair
	for _, a := range as {
		for _, b := range bs {
			if opts.match(a, b) {
				out = append(out, Pair{A: a.ID, B: b.ID})
			}
		}
	}
	return out
}

// SelfNestedLoop is the quadratic baseline self-join; each unordered pair is
// tested once and reported with A < B.
func SelfNestedLoop(items []index.Item, opts Options) []Pair {
	var out []Pair
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			if opts.match(items[i], items[j]) {
				out = append(out, orderPair(items[i].ID, items[j].ID))
			}
		}
	}
	return out
}

// PlaneSweep joins two sets by sweeping a plane along the X axis: both sets
// are sorted by Box.Min.X and only elements whose X extents (expanded by Eps)
// overlap are compared. As the paper observes, the sweep does not ensure that
// only spatially close objects are compared — elements far apart in Y or Z
// but overlapping in X still generate comparisons.
func PlaneSweep(as, bs []index.Item, opts Options) []Pair {
	a := append([]index.Item(nil), as...)
	b := append([]index.Item(nil), bs...)
	sortByMinX(a)
	sortByMinX(b)
	var out []Pair
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Box.Min.X <= b[j].Box.Min.X {
			out = sweepOne(a[i], b, j, opts, false, out)
			i++
		} else {
			out = sweepOne(b[j], a, i, opts, true, out)
			j++
		}
	}
	return out
}

// sweepOne compares pivot against other[start:] while their X extents overlap.
// If swapped is true, pivot came from the B set and the pair order is
// reversed.
func sweepOne(pivot index.Item, other []index.Item, start int, opts Options, swapped bool, out []Pair) []Pair {
	maxX := pivot.Box.Max.X + opts.Eps
	for k := start; k < len(other) && other[k].Box.Min.X <= maxX; k++ {
		var p Pair
		var ok bool
		if swapped {
			ok = opts.match(other[k], pivot)
			p = Pair{A: other[k].ID, B: pivot.ID}
		} else {
			ok = opts.match(pivot, other[k])
			p = Pair{A: pivot.ID, B: other[k].ID}
		}
		if ok {
			out = append(out, p)
		}
	}
	return out
}

// SelfPlaneSweep is the plane-sweep self-join.
func SelfPlaneSweep(items []index.Item, opts Options) []Pair {
	a := append([]index.Item(nil), items...)
	sortByMinX(a)
	var out []Pair
	for i := range a {
		maxX := a[i].Box.Max.X + opts.Eps
		for j := i + 1; j < len(a) && a[j].Box.Min.X <= maxX; j++ {
			if opts.match(a[i], a[j]) {
				out = append(out, orderPair(a[i].ID, a[j].ID))
			}
		}
	}
	return out
}

func sortByMinX(items []index.Item) {
	sort.Slice(items, func(i, j int) bool {
		return items[i].Box.Min.X < items[j].Box.Min.X
	})
}

func orderPair(a, b int64) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// DedupPairs sorts and deduplicates a pair list in place and returns it.
// Partition-based joins can report the same pair from several partitions.
func DedupPairs(pairs []Pair) []Pair {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	out := pairs[:0]
	for i, p := range pairs {
		if i == 0 || p != pairs[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// universeOf returns the union of the boxes of both inputs.
func universeOf(as, bs []index.Item) geom.AABB {
	u := geom.EmptyAABB()
	for _, it := range as {
		u = u.Union(it.Box)
	}
	for _, it := range bs {
		u = u.Union(it.Box)
	}
	return u
}
