package join

import (
	"math/rand"
	"reflect"
	"testing"

	"spatialsim/internal/datagen"
	"spatialsim/internal/geom"
	"spatialsim/internal/index"
	"spatialsim/internal/instrument"
)

func randomItems(n int, seed int64, offset geom.Vec3) []index.Item {
	r := rand.New(rand.NewSource(seed))
	items := make([]index.Item, n)
	for i := range items {
		c := geom.V(r.Float64()*50, r.Float64()*50, r.Float64()*50).Add(offset)
		half := geom.V(r.Float64()*0.5, r.Float64()*0.5, r.Float64()*0.5)
		items[i] = index.Item{ID: int64(i), Box: geom.AABBFromCenter(c, half)}
	}
	return items
}

// canon produces a canonical, deduplicated, sorted pair set for comparison.
func canon(pairs []Pair) []Pair {
	c := append([]Pair(nil), pairs...)
	return DedupPairs(c)
}

// canonUnordered canonicalizes pairs ignoring (A,B) order, for comparing
// binary joins whose algorithms may report either orientation.
func canonUnordered(pairs []Pair) []Pair {
	c := make([]Pair, len(pairs))
	for i, p := range pairs {
		c[i] = orderPair(p.A, p.B)
	}
	return DedupPairs(c)
}

func TestBinaryJoinsAgreeWithNestedLoop(t *testing.T) {
	as := randomItems(400, 1, geom.Vec3{})
	bs := randomItems(400, 2, geom.V(0.5, 0.5, 0.5))
	for i := range bs {
		bs[i].ID += 10000 // disjoint id spaces
	}
	for _, eps := range []float64{0, 0.5, 2.0} {
		opts := Options{Eps: eps}
		want := canonUnordered(NestedLoop(as, bs, opts))
		if len(want) == 0 {
			t.Fatalf("eps=%v: nested loop found no pairs; test data too sparse", eps)
		}
		if got := canonUnordered(PlaneSweep(as, bs, opts)); !reflect.DeepEqual(got, want) {
			t.Fatalf("eps=%v: plane sweep %d pairs, want %d", eps, len(got), len(want))
		}
		if got := canonUnordered(GridJoin(as, bs, opts, GridJoinConfig{})); !reflect.DeepEqual(got, want) {
			t.Fatalf("eps=%v: grid join %d pairs, want %d", eps, len(got), len(want))
		}
		if got := canonUnordered(RTreeJoin(as, bs, opts)); !reflect.DeepEqual(got, want) {
			t.Fatalf("eps=%v: rtree join %d pairs, want %d", eps, len(got), len(want))
		}
		if got := canonUnordered(TOUCHJoin(as, bs, opts)); !reflect.DeepEqual(got, want) {
			t.Fatalf("eps=%v: TOUCH join %d pairs, want %d", eps, len(got), len(want))
		}
	}
}

func TestSelfJoinsAgreeWithNestedLoop(t *testing.T) {
	items := randomItems(500, 3, geom.Vec3{})
	for _, eps := range []float64{0, 1.0} {
		opts := Options{Eps: eps}
		want := canon(SelfNestedLoop(items, opts))
		if len(want) == 0 {
			t.Fatalf("eps=%v: no self-join pairs; test data too sparse", eps)
		}
		if got := canon(SelfPlaneSweep(items, opts)); !reflect.DeepEqual(got, want) {
			t.Fatalf("eps=%v: self plane sweep %d pairs, want %d", eps, len(got), len(want))
		}
		if got := canon(SelfGridJoin(items, opts, GridJoinConfig{})); !reflect.DeepEqual(got, want) {
			t.Fatalf("eps=%v: self grid join %d pairs, want %d", eps, len(got), len(want))
		}
		if got := canon(SelfRTreeJoin(items, opts)); !reflect.DeepEqual(got, want) {
			t.Fatalf("eps=%v: self rtree join %d pairs, want %d", eps, len(got), len(want))
		}
		if got := canon(SelfTOUCHJoin(items, opts)); !reflect.DeepEqual(got, want) {
			t.Fatalf("eps=%v: self TOUCH join %d pairs, want %d", eps, len(got), len(want))
		}
	}
}

func TestJoinComparisonCountsFavorPartitioning(t *testing.T) {
	// The whole point of grid/TOUCH joins: far fewer comparisons than the
	// nested loop on clustered data.
	u := geom.NewAABB(geom.V(0, 0, 0), geom.V(100, 100, 100))
	d := datagen.GenerateClustered(datagen.ClusteredConfig{N: 2000, Clusters: 10, Universe: u, Seed: 4})
	items := make([]index.Item, d.Len())
	for i := range d.Elements {
		items[i] = index.Item{ID: d.Elements[i].ID, Box: d.Elements[i].Box}
	}
	eps := 0.2

	var nl, gr, tc, sw instrument.Counters
	wantPairs := canon(SelfNestedLoop(items, Options{Eps: eps, Counters: &nl}))
	gridPairs := canon(SelfGridJoin(items, Options{Eps: eps, Counters: &gr}, GridJoinConfig{}))
	touchPairs := canon(SelfTOUCHJoin(items, Options{Eps: eps, Counters: &tc}))
	sweepPairs := canon(SelfPlaneSweep(items, Options{Eps: eps, Counters: &sw}))

	if !reflect.DeepEqual(gridPairs, wantPairs) || !reflect.DeepEqual(touchPairs, wantPairs) || !reflect.DeepEqual(sweepPairs, wantPairs) {
		t.Fatal("join results disagree")
	}
	if gr.Comparisons() >= nl.Comparisons()/4 {
		t.Fatalf("grid join comparisons %d not much lower than nested loop %d", gr.Comparisons(), nl.Comparisons())
	}
	if tc.Comparisons() >= nl.Comparisons()/4 {
		t.Fatalf("TOUCH comparisons %d not much lower than nested loop %d", tc.Comparisons(), nl.Comparisons())
	}
	// The paper's observation: the sweep line does not ensure only close
	// objects are compared, so it generally needs more comparisons than the
	// space-partitioning joins on clustered data.
	if sw.Comparisons() <= gr.Comparisons() {
		t.Logf("note: sweep comparisons %d vs grid %d (data-dependent)", sw.Comparisons(), gr.Comparisons())
	}
}

func TestJoinWithRefinement(t *testing.T) {
	// Synapse-style join: cylinders within a threshold of each other; the box
	// filter admits pairs the exact test rejects.
	u := geom.NewAABB(geom.V(0, 0, 0), geom.V(20, 20, 20))
	d := datagen.GenerateNeurons(datagen.NeuronConfig{
		Neurons: 5, SegmentsPerNeuron: 100, Universe: u, SegmentLength: 0.5, SegmentRadius: 0.05, Seed: 5,
	})
	items := make([]index.Item, d.Len())
	shapes := make(map[int64]geom.Cylinder, d.Len())
	for i := range d.Elements {
		items[i] = index.Item{ID: d.Elements[i].ID, Box: d.Elements[i].Box}
		shapes[d.Elements[i].ID] = d.Elements[i].Shape
	}
	const synapseGap = 0.05
	refine := func(a, b index.Item) bool {
		return shapes[a.ID].WithinDistance(shapes[b.ID], synapseGap)
	}
	optsRefined := Options{Eps: synapseGap, Refine: refine}
	optsBoxOnly := Options{Eps: synapseGap}

	want := canon(SelfNestedLoop(items, optsRefined))
	got := canon(SelfGridJoin(items, optsRefined, GridJoinConfig{}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("refined grid join %d pairs, want %d", len(got), len(want))
	}
	// The box-only join must be a superset of the refined join.
	boxOnly := canon(SelfGridJoin(items, optsBoxOnly, GridJoinConfig{}))
	if len(boxOnly) < len(want) {
		t.Fatalf("box filter (%d) smaller than refined result (%d)", len(boxOnly), len(want))
	}
}

func TestJoinEdgeCases(t *testing.T) {
	items := randomItems(10, 6, geom.Vec3{})
	empty := []index.Item{}
	if got := NestedLoop(empty, items, Options{}); len(got) != 0 {
		t.Error("nested loop with empty input returned pairs")
	}
	if got := GridJoin(empty, items, Options{}, GridJoinConfig{}); got != nil {
		t.Error("grid join with empty input returned pairs")
	}
	if got := RTreeJoin(items, empty, Options{}); got != nil {
		t.Error("rtree join with empty input returned pairs")
	}
	if got := TOUCHJoin(empty, empty, Options{}); got != nil {
		t.Error("TOUCH join with empty inputs returned pairs")
	}
	if got := SelfGridJoin(empty, Options{}, GridJoinConfig{}); got != nil {
		t.Error("self grid join of empty set returned pairs")
	}
	// Single element self-join has no pairs.
	if got := SelfNestedLoop(items[:1], Options{Eps: 100}); len(got) != 0 {
		t.Error("single-element self join returned pairs")
	}
	// DedupPairs.
	p := []Pair{{2, 3}, {1, 2}, {2, 3}, {1, 2}}
	if got := DedupPairs(p); len(got) != 2 || got[0] != (Pair{1, 2}) || got[1] != (Pair{2, 3}) {
		t.Errorf("DedupPairs = %v", got)
	}
	// Expected comparison helpers.
	if ExpectedComparisonsNestedLoop(10, 20) != 200 {
		t.Error("ExpectedComparisonsNestedLoop wrong")
	}
	if ExpectedComparisonsSelfNestedLoop(10) != 45 {
		t.Error("ExpectedComparisonsSelfNestedLoop wrong")
	}
}

func TestGridJoinExplicitResolution(t *testing.T) {
	as := randomItems(200, 7, geom.Vec3{})
	bs := randomItems(200, 8, geom.Vec3{})
	for i := range bs {
		bs[i].ID += 10000
	}
	want := canonUnordered(NestedLoop(as, bs, Options{Eps: 1}))
	for _, cells := range []int{1, 2, 8, 32} {
		got := canonUnordered(GridJoin(as, bs, Options{Eps: 1}, GridJoinConfig{CellsPerDim: cells}))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cells=%d: grid join disagrees with nested loop", cells)
		}
	}
}
