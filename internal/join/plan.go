package join

import (
	"fmt"
	"math"
	"sort"

	"spatialsim/internal/geom"
	"spatialsim/internal/index"
	"spatialsim/internal/instrument"
)

// This file is the planner-driven execution core of the join subsystem. The
// paper compares five in-memory join algorithms and observes that which one
// wins depends on the inputs: cardinality, density and how much the two sets
// overlap. The Planner encodes those decision criteria; a Plan is the
// prepared form of one join — the shared partitioning/replication state plus
// a decomposition into independent tasks — so the same machinery drives the
// sequential Run, the worker-pool exec.ParallelJoin, and the serving layer's
// /join endpoint. Tasks never produce a pair twice (the grid uses the
// reference-point technique, the tree joins filter at the emission site), so
// gathering task outputs needs a merge, not a dedup table.

// Algorithm identifies one of the five join strategies the paper surveys.
type Algorithm int

const (
	// AlgoNestedLoop is the quadratic baseline.
	AlgoNestedLoop Algorithm = iota
	// AlgoPlaneSweep sorts both inputs by Min.X and compares only elements
	// whose X extents (expanded by Eps) overlap.
	AlgoPlaneSweep
	// AlgoGrid is the PBSM-style uniform-grid partition join.
	AlgoGrid
	// AlgoRTree is the synchronized R-Tree traversal join.
	AlgoRTree
	// AlgoTOUCH is the hierarchical data-oriented partitioning join.
	AlgoTOUCH
)

// String returns the experiment-table name of the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgoNestedLoop:
		return "nested-loop"
	case AlgoPlaneSweep:
		return "sweep"
	case AlgoGrid:
		return "grid"
	case AlgoRTree:
		return "rtree-sync"
	case AlgoTOUCH:
		return "touch"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// ParseAlgorithm resolves an algorithm name (as printed by String, plus a few
// aliases) for CLI flags and the HTTP join endpoint.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "nested-loop", "nested", "nl":
		return AlgoNestedLoop, nil
	case "sweep", "plane-sweep":
		return AlgoPlaneSweep, nil
	case "grid", "pbsm":
		return AlgoGrid, nil
	case "rtree-sync", "rtree":
		return AlgoRTree, nil
	case "touch":
		return AlgoTOUCH, nil
	}
	return 0, fmt.Errorf("unknown join algorithm %q (nested-loop|sweep|grid|rtree-sync|touch)", s)
}

// Stats are the input statistics the planner decides on — the paper's own
// criteria: cardinality, density, and how much the inputs' MBRs overlap.
type Stats struct {
	// CardA and CardB are the input cardinalities (equal for self-joins).
	CardA, CardB int
	// MBRA and MBRB are the minimum bounding rectangles of the inputs.
	MBRA, MBRB geom.AABB
	// CoverageA and CoverageB are density proxies: the summed element box
	// volume divided by the MBR volume. Values well above 1 mean heavily
	// overlapping elements, where uniform-grid replication degenerates.
	CoverageA, CoverageB float64
	// OverlapRatio is vol(MBRA ∩ MBRB) / min(vol(MBRA), vol(MBRB)) — how much
	// of the smaller input's extent the other input can even reach. 1 for
	// self-joins.
	OverlapRatio float64
	// Elongation is the ratio of the longest to the second-longest axis of
	// the combined MBR. Effectively one-dimensional data favors the sweep.
	Elongation float64
}

// statsOf computes the statistics of one input set.
func statsOf(items []index.Item) (mbr geom.AABB, coverage float64) {
	mbr = geom.EmptyAABB()
	var volSum float64
	for i := range items {
		mbr = mbr.Union(items[i].Box)
		volSum += items[i].Box.Volume()
	}
	if v := mbr.Volume(); v > 0 {
		coverage = volSum / v
	}
	return mbr, coverage
}

// ComputeStats derives the planner inputs for a binary join.
func ComputeStats(as, bs []index.Item) Stats {
	st := Stats{CardA: len(as), CardB: len(bs)}
	st.MBRA, st.CoverageA = statsOf(as)
	st.MBRB, st.CoverageB = statsOf(bs)
	minVol := math.Min(st.MBRA.Volume(), st.MBRB.Volume())
	if minVol > 0 {
		st.OverlapRatio = st.MBRA.OverlapVolume(st.MBRB) / minVol
	} else if st.MBRA.Intersects(st.MBRB) {
		st.OverlapRatio = 1
	}
	st.Elongation = elongation(st.MBRA.Union(st.MBRB))
	return st
}

// ComputeSelfStats derives the planner inputs for a self-join.
func ComputeSelfStats(items []index.Item) Stats {
	st := Stats{CardA: len(items), CardB: len(items)}
	st.MBRA, st.CoverageA = statsOf(items)
	st.MBRB, st.CoverageB = st.MBRA, st.CoverageA
	st.OverlapRatio = 1
	st.Elongation = elongation(st.MBRA)
	return st
}

// elongation returns longest-axis / second-longest-axis of the box.
func elongation(b geom.AABB) float64 {
	if b.IsEmpty() {
		return 1
	}
	s := b.Size()
	d := []float64{s.X, s.Y, s.Z}
	sort.Float64s(d)
	if d[1] <= 0 {
		return math.Inf(1)
	}
	return d[2] / d[1]
}

// Planner picks a join algorithm from input statistics and prepares Plans.
// The zero value uses the default thresholds; fields override them.
type Planner struct {
	// NestedLoopMax: when CardA*CardB is at most this, the quadratic baseline
	// beats any partitioning overhead.
	NestedLoopMax float64
	// MinOverlap: below this MBR overlap ratio the synchronized R-Tree
	// traversal wins — disjoint regions prune whole subtree pairs at the top.
	MinOverlap float64
	// SkewRatio: at this cardinality skew and above, TOUCH wins — it builds
	// the hierarchy over the small side and streams the large side through it.
	SkewRatio float64
	// ElongationRatio: at this MBR elongation and above the inputs are
	// effectively one-dimensional and the plane sweep wins.
	ElongationRatio float64
	// DenseCoverage: at this element-density coverage and above, uniform-grid
	// border replication degenerates and TOUCH's data-oriented partitioning
	// wins.
	DenseCoverage float64
	// Grid configures the grid join when it is picked (or forced).
	Grid GridJoinConfig
	// TaskTarget is the rough number of independent tasks a Plan decomposes
	// into (<= 0 uses 256). More tasks than workers keeps the pool balanced
	// under skew.
	TaskTarget int
}

func (pl Planner) withDefaults() Planner {
	if pl.NestedLoopMax <= 0 {
		pl.NestedLoopMax = 4096
	}
	if pl.MinOverlap <= 0 {
		pl.MinOverlap = 0.05
	}
	if pl.SkewRatio <= 0 {
		pl.SkewRatio = 8
	}
	if pl.ElongationRatio <= 0 {
		pl.ElongationRatio = 12
	}
	if pl.DenseCoverage <= 0 {
		pl.DenseCoverage = 2
	}
	if pl.TaskTarget <= 0 {
		pl.TaskTarget = 256
	}
	return pl
}

// Pick chooses the algorithm for the given input statistics. The checks run
// from the most to the least specific regime; uniform overlapping inputs fall
// through to the grid, the paper's PBSM default.
func (pl Planner) Pick(st Stats) Algorithm {
	pl = pl.withDefaults()
	if float64(st.CardA)*float64(st.CardB) <= pl.NestedLoopMax {
		return AlgoNestedLoop
	}
	if st.OverlapRatio < pl.MinOverlap {
		return AlgoRTree
	}
	minC, maxC := st.CardA, st.CardB
	if minC > maxC {
		minC, maxC = maxC, minC
	}
	if minC > 0 && float64(maxC)/float64(minC) >= pl.SkewRatio {
		return AlgoTOUCH
	}
	if st.Elongation >= pl.ElongationRatio {
		return AlgoPlaneSweep
	}
	if math.Max(st.CoverageA, st.CoverageB) >= pl.DenseCoverage {
		return AlgoTOUCH
	}
	return AlgoGrid
}

// Plan is one prepared join: the chosen algorithm, the shared partitioning
// state, and a decomposition into Tasks() independent units of work. A Plan
// is read-only after construction — RunTask may be called concurrently for
// distinct (or even identical) tasks, which is how exec.ParallelJoin tiles a
// plan across its worker pool. Close releases pooled partitioning buffers;
// using the plan after Close is invalid.
type Plan struct {
	algo  Algorithm
	stats Stats
	self  bool
	opts  Options
	as    []index.Item
	bs    []index.Item

	// grid state
	part      *partitioner
	gridTasks []gridTask

	// tree state (rtree-sync and TOUCH)
	ha, hb   *flatHierarchy
	frontier [][2]int32

	// chunked-side decompositions (nested loop, sweep, TOUCH probes)
	sortedA, sortedB []index.Item
	chunkA, chunkB   int
	aTasks, bTasks   int

	// TOUCH orientation: the hierarchy is built over the smaller input, so a
	// skewed binary join may probe with as while building over bs. touchProbe
	// is the probe side; touchSwap records that build/probe were exchanged
	// (pair emission restores the (as, bs) orientation).
	touchProbe []index.Item
	touchSwap  bool
}

// Algo returns the algorithm the plan executes.
func (p *Plan) Algo() Algorithm { return p.algo }

// Statistics returns the input statistics the planner decided on.
func (p *Plan) Statistics() Stats { return p.stats }

// Self reports whether the plan is a self-join.
func (p *Plan) Self() bool { return p.self }

// Counters returns the instrumentation counters the plan charges by default
// (nil when the caller supplied none).
func (p *Plan) Counters() *instrument.Counters { return p.opts.Counters }

// Eps returns the distance threshold of the join.
func (p *Plan) Eps() float64 { return p.opts.Eps }

// Plan prepares a binary join, picking the algorithm from the input
// statistics.
func (pl Planner) Plan(as, bs []index.Item, opts Options) *Plan {
	st := ComputeStats(as, bs)
	return pl.newPlan(pl.Pick(st), st, as, bs, false, opts)
}

// PlanWith prepares a binary join with a forced algorithm choice.
func (pl Planner) PlanWith(algo Algorithm, as, bs []index.Item, opts Options) *Plan {
	return pl.newPlan(algo, ComputeStats(as, bs), as, bs, false, opts)
}

// PlanSelf prepares a self-join, picking the algorithm from the input
// statistics.
func (pl Planner) PlanSelf(items []index.Item, opts Options) *Plan {
	st := ComputeSelfStats(items)
	return pl.newPlan(pl.Pick(st), st, items, items, true, opts)
}

// PlanSelfWith prepares a self-join with a forced algorithm choice.
func (pl Planner) PlanSelfWith(algo Algorithm, items []index.Item, opts Options) *Plan {
	return pl.newPlan(algo, ComputeSelfStats(items), items, items, true, opts)
}

func (pl Planner) newPlan(algo Algorithm, st Stats, as, bs []index.Item, self bool, opts Options) *Plan {
	pl = pl.withDefaults()
	p := &Plan{algo: algo, stats: st, self: self, opts: opts, as: as, bs: bs}
	if len(as) == 0 || len(bs) == 0 || (self && len(as) < 2) {
		// Degenerate plan: zero tasks, empty result.
		return p
	}
	target := pl.TaskTarget
	switch algo {
	case AlgoNestedLoop:
		p.chunkA = chunkFor(len(as), target)
		p.aTasks = tasksFor(len(as), p.chunkA)
	case AlgoPlaneSweep:
		p.sortedA = append([]index.Item(nil), as...)
		sortByMinX(p.sortedA)
		p.chunkA = chunkFor(len(p.sortedA), target)
		p.aTasks = tasksFor(len(p.sortedA), p.chunkA)
		if !self {
			p.sortedB = append([]index.Item(nil), bs...)
			sortByMinX(p.sortedB)
			p.chunkB = chunkFor(len(p.sortedB), target)
			p.bTasks = tasksFor(len(p.sortedB), p.chunkB)
		}
	case AlgoGrid:
		p.prepareGrid(pl.Grid)
	case AlgoRTree:
		p.ha = buildFlatHierarchy(as)
		if self {
			p.hb = p.ha
		} else {
			p.hb = buildFlatHierarchy(bs)
		}
		p.buildFrontier(target)
	case AlgoTOUCH:
		// Build over the smaller side, probe with the larger — the whole point
		// of picking TOUCH under cardinality skew.
		build, probe := as, bs
		if !self && len(bs) < len(as) {
			build, probe = bs, as
			p.touchSwap = true
		}
		p.ha = buildFlatHierarchy(build)
		p.touchProbe = probe
		p.chunkB = chunkFor(len(probe), target)
		p.bTasks = tasksFor(len(probe), p.chunkB)
	}
	return p
}

// chunkFor returns the per-task element count that splits n elements into
// roughly `target` tasks.
func chunkFor(n, target int) int {
	c := (n + target - 1) / target
	if c < 1 {
		c = 1
	}
	return c
}

func tasksFor(n, chunk int) int {
	return (n + chunk - 1) / chunk
}

// Tasks returns the number of independent tasks the plan decomposes into.
func (p *Plan) Tasks() int {
	switch p.algo {
	case AlgoNestedLoop:
		return p.aTasks
	case AlgoPlaneSweep:
		return p.aTasks + p.bTasks
	case AlgoGrid:
		return len(p.gridTasks)
	case AlgoRTree:
		return len(p.frontier)
	case AlgoTOUCH:
		return p.bTasks
	}
	return 0
}

// RunTask executes one task, appending its pairs to buf. Distinct tasks emit
// disjoint pair sets (no task-level deduplication is ever needed); within a
// task, pairs are emitted at most once. counters, if non-nil, receives the
// task's comparison accounting instead of the plan's own counters — the hook
// exec.ParallelJoin uses to keep per-worker accounting contention-free.
func (p *Plan) RunTask(task int, counters *instrument.Counters, buf []Pair) []Pair {
	opts := p.opts
	if counters != nil {
		opts.Counters = counters
	}
	switch p.algo {
	case AlgoNestedLoop:
		return p.runNestedTask(task, opts, buf)
	case AlgoPlaneSweep:
		return p.runSweepTask(task, opts, buf)
	case AlgoGrid:
		return p.runGridTask(task, opts, buf)
	case AlgoRTree:
		return p.runTreeTask(task, opts, buf)
	case AlgoTOUCH:
		return p.runTouchTask(task, opts, buf)
	}
	return buf
}

// Run executes every task sequentially and returns the pairs in canonical
// (sorted, deduplicated) order.
func (p *Plan) Run() []Pair {
	var out []Pair
	for t, n := 0, p.Tasks(); t < n; t++ {
		out = p.RunTask(t, nil, out)
	}
	return DedupPairs(out)
}

// Close returns pooled partitioning buffers for reuse by later plans. The
// plan must not be used afterwards.
func (p *Plan) Close() {
	if p.part != nil {
		putPartitioner(p.part)
		p.part = nil
		p.gridTasks = nil
	}
}

// --- nested loop ---

func (p *Plan) runNestedTask(task int, opts Options, out []Pair) []Pair {
	lo := task * p.chunkA
	hi := minInt(lo+p.chunkA, len(p.as))
	if p.self {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < len(p.as); j++ {
				if opts.match(p.as[i], p.as[j]) {
					out = append(out, orderPair(p.as[i].ID, p.as[j].ID))
				}
			}
		}
		return out
	}
	for i := lo; i < hi; i++ {
		for j := range p.bs {
			if opts.match(p.as[i], p.bs[j]) {
				out = append(out, Pair{A: p.as[i].ID, B: p.bs[j].ID})
			}
		}
	}
	return out
}

// --- plane sweep ---

// runSweepTask sweeps one chunk of the X-sorted inputs. For a binary join the
// candidate pairs are split exactly in two: pairs where b starts at or after a
// (found by the A-side tasks scanning forward in B) and pairs where b starts
// strictly before a (found by the B-side tasks scanning forward in A), so no
// pair is reported twice. The self-join scans forward from each element, the
// classic single-list sweep.
func (p *Plan) runSweepTask(task int, opts Options, out []Pair) []Pair {
	eps := opts.Eps
	if p.self {
		a := p.sortedA
		lo := task * p.chunkA
		hi := minInt(lo+p.chunkA, len(a))
		for i := lo; i < hi; i++ {
			maxX := a[i].Box.Max.X + eps
			for j := i + 1; j < len(a) && a[j].Box.Min.X <= maxX; j++ {
				if opts.match(a[i], a[j]) {
					out = append(out, orderPair(a[i].ID, a[j].ID))
				}
			}
		}
		return out
	}
	if task < p.aTasks {
		lo := task * p.chunkA
		hi := minInt(lo+p.chunkA, len(p.sortedA))
		for i := lo; i < hi; i++ {
			a := p.sortedA[i]
			start := sort.Search(len(p.sortedB), func(k int) bool {
				return p.sortedB[k].Box.Min.X >= a.Box.Min.X
			})
			maxX := a.Box.Max.X + eps
			for k := start; k < len(p.sortedB) && p.sortedB[k].Box.Min.X <= maxX; k++ {
				if opts.match(a, p.sortedB[k]) {
					out = append(out, Pair{A: a.ID, B: p.sortedB[k].ID})
				}
			}
		}
		return out
	}
	task -= p.aTasks
	lo := task * p.chunkB
	hi := minInt(lo+p.chunkB, len(p.sortedB))
	for j := lo; j < hi; j++ {
		b := p.sortedB[j]
		start := sort.Search(len(p.sortedA), func(k int) bool {
			return p.sortedA[k].Box.Min.X > b.Box.Min.X
		})
		maxX := b.Box.Max.X + eps
		for k := start; k < len(p.sortedA) && p.sortedA[k].Box.Min.X <= maxX; k++ {
			if opts.match(p.sortedA[k], b) {
				out = append(out, Pair{A: p.sortedA[k].ID, B: b.ID})
			}
		}
	}
	return out
}

// --- grid (PBSM) ---

// prepareGrid partitions both inputs into the uniform grid using the pooled
// partitioner; tasks are the cells occupied on both sides (or with at least
// two elements, for self-joins).
func (p *Plan) prepareGrid(cfg GridJoinConfig) {
	u := universeOf(p.as, p.bs).Expand(p.opts.Eps + 1e-9)
	cells := cfg.CellsPerDim
	if cells <= 0 {
		if p.self {
			cells = defaultJoinCells(len(p.as))
		} else {
			cells = defaultJoinCells(len(p.as) + len(p.bs))
		}
	}
	p.part = getPartitioner(u, cells, p.opts.Eps)
	p.part.assign(p.as, &p.part.a)
	if p.self {
		p.gridTasks = p.part.selfTasks()
	} else {
		p.part.assign(p.bs, &p.part.b)
		p.gridTasks = p.part.binaryTasks()
	}
}

// runGridTask compares the elements sharing one grid cell. The reference
// point technique makes every pair's emission site unique: a candidate pair
// is examined only in the cell containing the corner point max(aMin, bMin)
// shifted by the assignment expansion — a point that lies in both elements'
// expanded boxes whenever the pair can match, and in exactly one cell. Pairs
// found through border replication in other cells are skipped before any
// comparison is charged, so the grid join emits no duplicates at all.
func (p *Plan) runGridTask(task int, opts Options, out []Pair) []Pair {
	t := p.gridTasks[task]
	part := p.part
	if p.self {
		idxs := part.a.idxs
		for x := t.aLo; x < t.aHi; x++ {
			i := idxs[x]
			a := p.as[i]
			for y := x + 1; y < t.aHi; y++ {
				j := idxs[y]
				b := p.as[j]
				if a.ID == b.ID {
					continue
				}
				if part.refCell(a.Box, b.Box) != t.cell {
					continue
				}
				if opts.match(a, b) {
					out = append(out, orderPair(a.ID, b.ID))
				}
			}
		}
		return out
	}
	for x := t.aLo; x < t.aHi; x++ {
		a := p.as[part.a.idxs[x]]
		for y := t.bLo; y < t.bHi; y++ {
			b := p.bs[part.b.idxs[y]]
			if part.refCell(a.Box, b.Box) != t.cell {
				continue
			}
			if opts.match(a, b) {
				out = append(out, Pair{A: a.ID, B: b.ID})
			}
		}
	}
	return out
}

// --- synchronized R-Tree traversal ---

// buildFrontier expands the root node pair breadth-first (pruning pairs
// farther than Eps, like the descent itself) until at least `target`
// independent node pairs exist or nothing is expandable. Each frontier pair
// seeds one task's synchronized descent.
func (p *Plan) buildFrontier(target int) {
	eps2 := p.opts.Eps * p.opts.Eps
	queue := make([][2]int32, 1, 2*target)
	queue[0] = [2]int32{0, 0}
	frontier := make([][2]int32, 0, 2*target)
	for i := 0; i < len(queue); i++ {
		pr := queue[i]
		a := &p.ha.nodes[pr[0]]
		b := &p.hb.nodes[pr[1]]
		if p.opts.Counters != nil {
			p.opts.Counters.AddTreeIntersectTests(1)
		}
		if a.box.Distance2(b.box) > eps2 {
			continue
		}
		pending := len(queue) - i - 1
		if (a.leaf && b.leaf) || len(frontier)+pending >= target {
			frontier = append(frontier, pr)
			continue
		}
		switch {
		case a.leaf:
			for j := b.first; j < b.first+b.count; j++ {
				queue = append(queue, [2]int32{pr[0], j})
			}
		case b.leaf:
			for j := a.first; j < a.first+a.count; j++ {
				queue = append(queue, [2]int32{j, pr[1]})
			}
		default:
			for j := a.first; j < a.first+a.count; j++ {
				for k := b.first; k < b.first+b.count; k++ {
					queue = append(queue, [2]int32{j, k})
				}
			}
		}
	}
	p.frontier = frontier
}

func (p *Plan) runTreeTask(task int, opts Options, out []Pair) []Pair {
	pr := p.frontier[task]
	return p.descend(pr[0], pr[1], opts, out)
}

// descend is the synchronized traversal from one node pair, identical to the
// classic R-Tree join. For self-joins only ia.ID < ib.ID pairs are emitted:
// the full items x items traversal visits both orientations of every pair, so
// the filter yields each unordered pair exactly once — with no dedup pass.
func (p *Plan) descend(ai, bi int32, opts Options, out []Pair) []Pair {
	if opts.Counters != nil {
		opts.Counters.AddTreeIntersectTests(1)
	}
	a := &p.ha.nodes[ai]
	b := &p.hb.nodes[bi]
	eps2 := opts.Eps * opts.Eps
	if a.box.Distance2(b.box) > eps2 {
		return out
	}
	switch {
	case a.leaf && b.leaf:
		for i := a.first; i < a.first+a.count; i++ {
			ia := p.ha.item(i)
			for j := b.first; j < b.first+b.count; j++ {
				ib := p.hb.item(j)
				if p.self && ia.ID >= ib.ID {
					continue
				}
				if opts.match(ia, ib) {
					out = append(out, Pair{A: ia.ID, B: ib.ID})
				}
			}
		}
	case a.leaf:
		for j := b.first; j < b.first+b.count; j++ {
			out = p.descend(ai, j, opts, out)
		}
	case b.leaf:
		for i := a.first; i < a.first+a.count; i++ {
			out = p.descend(i, bi, opts, out)
		}
	default:
		for i := a.first; i < a.first+a.count; i++ {
			for j := b.first; j < b.first+b.count; j++ {
				out = p.descend(i, j, opts, out)
			}
		}
	}
	return out
}

// --- TOUCH ---

// runTouchTask fuses TOUCH's assignment and probe phases per probe element:
// each probe descends the build-side hierarchy to the lowest node that could
// hold all its partners, then joins against that node's subtree. Fusing the
// phases removes the shared per-node assignment lists, making probe chunks
// embarrassingly parallel. Self-joins emit only a.ID < b.ID (each unordered
// pair is visited once per orientation, like the tree join).
func (p *Plan) runTouchTask(task int, opts Options, out []Pair) []Pair {
	lo := task * p.chunkB
	hi := minInt(lo+p.chunkB, len(p.touchProbe))
	for k := lo; k < hi; k++ {
		b := p.touchProbe[k]
		node := p.touchNode(b, opts.Eps)
		out = p.probeSubtree(node, b, opts, out)
	}
	return out
}

// touchNode pushes b down the hierarchy as long as exactly one child can
// contain join partners for it (the TOUCH assignment invariant).
func (p *Plan) touchNode(b index.Item, eps float64) int32 {
	expanded := b.Box.Expand(eps)
	cur := int32(0)
	for {
		n := &p.ha.nodes[cur]
		if n.leaf {
			return cur
		}
		var next int32
		matches := 0
		for c := n.first; c < n.first+n.count; c++ {
			if p.ha.nodes[c].box.Intersects(expanded) {
				matches++
				next = c
				if matches > 1 {
					break
				}
			}
		}
		if matches != 1 {
			return cur
		}
		cur = next
	}
}

// probeSubtree compares b against every build element in the subtree rooted
// at ni, pruning subtrees farther than Eps.
func (p *Plan) probeSubtree(ni int32, b index.Item, opts Options, out []Pair) []Pair {
	if opts.Counters != nil {
		opts.Counters.AddTreeIntersectTests(1)
	}
	n := &p.ha.nodes[ni]
	if n.box.Distance2(b.Box) > opts.Eps*opts.Eps {
		return out
	}
	if n.leaf {
		for i := n.first; i < n.first+n.count; i++ {
			a := p.ha.item(i)
			if p.self && a.ID >= b.ID {
				continue
			}
			if p.touchSwap {
				// Build side is bs: restore the (as, bs) orientation for both
				// the refinement predicate and the emitted pair.
				if opts.match(b, a) {
					out = append(out, Pair{A: b.ID, B: a.ID})
				}
			} else if opts.match(a, b) {
				out = append(out, Pair{A: a.ID, B: b.ID})
			}
		}
		return out
	}
	for c := n.first; c < n.first+n.count; c++ {
		out = p.probeSubtree(c, b, opts, out)
	}
	return out
}
