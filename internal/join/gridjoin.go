package join

import (
	"math"
	"sort"
	"sync"

	"spatialsim/internal/geom"
	"spatialsim/internal/index"
)

// GridJoinConfig configures the PBSM-style grid join.
type GridJoinConfig struct {
	// CellsPerDim is the grid resolution; 0 derives it from the input size
	// (roughly one cell per few elements, capped).
	CellsPerDim int
}

// GridJoin is the partition-based spatial-merge join (Patel & DeWitt's PBSM
// adapted to memory, as the paper suggests): both inputs are partitioned into
// a uniform grid (with replication at cell borders, enlarged by Eps) and only
// elements sharing a cell are compared. The reference-point technique makes
// every pair's emission cell unique, so no deduplication pass is needed.
func GridJoin(as, bs []index.Item, opts Options, cfg GridJoinConfig) []Pair {
	if len(as) == 0 || len(bs) == 0 {
		return nil
	}
	p := (Planner{Grid: cfg}).PlanWith(AlgoGrid, as, bs, opts)
	defer p.Close()
	return p.Run()
}

// SelfGridJoin is the grid join of a set with itself (e.g. synapse
// detection). Pairs are reported once with A < B.
func SelfGridJoin(items []index.Item, opts Options, cfg GridJoinConfig) []Pair {
	if len(items) == 0 {
		return nil
	}
	p := (Planner{Grid: cfg}).PlanSelfWith(AlgoGrid, items, opts)
	defer p.Close()
	return p.Run()
}

func defaultJoinCells(n int) int {
	c := int(math.Cbrt(float64(n) / 4))
	if c < 2 {
		c = 2
	}
	if c > 128 {
		c = 128
	}
	return c
}

// cellAssignment is the reusable cell-list storage of one input side: every
// (cell, element) replication entry, sorted by cell so each occupied cell is
// one contiguous run. It replaces the per-call map[cell][]int of the old
// partitioner — reuse keeps assignment allocation-free once the buffers are
// warm.
type cellAssignment struct {
	keys     []int64 // linear cell id per entry, sorted
	idxs     []int32 // element index per entry, aligned with keys
	runCell  []int64 // distinct occupied cells
	runStart []int32 // start offset of each run in keys/idxs, plus final len
}

func (a *cellAssignment) Len() int { return len(a.keys) }
func (a *cellAssignment) Less(i, j int) bool {
	if a.keys[i] != a.keys[j] {
		return a.keys[i] < a.keys[j]
	}
	return a.idxs[i] < a.idxs[j]
}
func (a *cellAssignment) Swap(i, j int) {
	a.keys[i], a.keys[j] = a.keys[j], a.keys[i]
	a.idxs[i], a.idxs[j] = a.idxs[j], a.idxs[i]
}

// buildRuns derives the per-cell runs from the sorted entry list.
func (a *cellAssignment) buildRuns() {
	a.runCell = a.runCell[:0]
	a.runStart = a.runStart[:0]
	for i := 0; i < len(a.keys); i++ {
		if i == 0 || a.keys[i] != a.keys[i-1] {
			a.runCell = append(a.runCell, a.keys[i])
			a.runStart = append(a.runStart, int32(i))
		}
	}
	a.runStart = append(a.runStart, int32(len(a.keys)))
}

// gridTask is one cell's worth of join work: the entry ranges of the two
// sides (aLo..aHi only, for self-joins).
type gridTask struct {
	cell     int64
	aLo, aHi int32
	bLo, bHi int32
}

// partitioner assigns elements to uniform grid cells. Its assignment and task
// buffers are reused across joins through a pool (getPartitioner /
// putPartitioner), so steady-state grid joins rebuild no per-call cell maps.
type partitioner struct {
	universe geom.AABB
	n        int
	cell     geom.Vec3
	h        float64 // assignment half-expansion: Eps/2 plus guard
	a, b     cellAssignment
	tasks    []gridTask
}

var partPool = sync.Pool{New: func() interface{} { return &partitioner{} }}

func getPartitioner(u geom.AABB, cells int, eps float64) *partitioner {
	p := partPool.Get().(*partitioner)
	s := u.Size()
	p.universe = u
	p.n = cells
	p.cell = geom.V(s.X/float64(cells), s.Y/float64(cells), s.Z/float64(cells))
	p.h = eps/2 + 1e-12
	return p
}

func putPartitioner(p *partitioner) { partPool.Put(p) }

// coordAxis maps a coordinate to its (clamped) cell index along one axis.
func (p *partitioner) coordAxis(v float64, axis int) int {
	x := (v - p.universe.Min.Axis(axis)) / p.cell.Axis(axis)
	return clampInt(int(x), 0, p.n-1)
}

// linear maps cell coordinates to the linear cell id.
func (p *partitioner) linear(x, y, z int) int64 {
	n := int64(p.n)
	return (int64(z)*n+int64(y))*n + int64(x)
}

// refCell returns the cell holding the reference point of the candidate pair
// (a, b): the componentwise max of the two box minima, shifted by the same
// half-expansion the assignment applies. Whenever the pair can be within Eps,
// this point lies inside both expanded boxes — so it falls in a cell both
// elements were assigned to, and in exactly one cell overall. Comparing a
// pair only in its reference cell eliminates border-replication duplicates
// without any dedup table.
func (p *partitioner) refCell(a, b geom.AABB) int64 {
	return p.linear(
		p.coordAxis(math.Max(a.Min.X, b.Min.X)-p.h, 0),
		p.coordAxis(math.Max(a.Min.Y, b.Min.Y)-p.h, 1),
		p.coordAxis(math.Max(a.Min.Z, b.Min.Z)-p.h, 2),
	)
}

// assign maps each item index to every cell its expanded box overlaps,
// producing sorted per-cell runs in asn's reused buffers.
func (p *partitioner) assign(items []index.Item, asn *cellAssignment) {
	asn.keys = asn.keys[:0]
	asn.idxs = asn.idxs[:0]
	for idx := range items {
		box := items[idx].Box
		lox := p.coordAxis(box.Min.X-p.h, 0)
		loy := p.coordAxis(box.Min.Y-p.h, 1)
		loz := p.coordAxis(box.Min.Z-p.h, 2)
		hix := p.coordAxis(box.Max.X+p.h, 0)
		hiy := p.coordAxis(box.Max.Y+p.h, 1)
		hiz := p.coordAxis(box.Max.Z+p.h, 2)
		for z := loz; z <= hiz; z++ {
			for y := loy; y <= hiy; y++ {
				for x := lox; x <= hix; x++ {
					asn.keys = append(asn.keys, p.linear(x, y, z))
					asn.idxs = append(asn.idxs, int32(idx))
				}
			}
		}
	}
	sort.Sort(asn)
	asn.buildRuns()
}

// binaryTasks intersects the occupied-cell runs of both sides; only cells
// occupied on both sides produce work.
func (p *partitioner) binaryTasks() []gridTask {
	p.tasks = p.tasks[:0]
	i, j := 0, 0
	for i < len(p.a.runCell) && j < len(p.b.runCell) {
		switch {
		case p.a.runCell[i] < p.b.runCell[j]:
			i++
		case p.b.runCell[j] < p.a.runCell[i]:
			j++
		default:
			p.tasks = append(p.tasks, gridTask{
				cell: p.a.runCell[i],
				aLo:  p.a.runStart[i], aHi: p.a.runStart[i+1],
				bLo: p.b.runStart[j], bHi: p.b.runStart[j+1],
			})
			i++
			j++
		}
	}
	return p.tasks
}

// selfTasks returns the cells holding at least two elements.
func (p *partitioner) selfTasks() []gridTask {
	p.tasks = p.tasks[:0]
	for i := range p.a.runCell {
		lo, hi := p.a.runStart[i], p.a.runStart[i+1]
		if hi-lo < 2 {
			continue
		}
		p.tasks = append(p.tasks, gridTask{cell: p.a.runCell[i], aLo: lo, aHi: hi})
	}
	return p.tasks
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
