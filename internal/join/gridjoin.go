package join

import (
	"math"

	"spatialsim/internal/geom"
	"spatialsim/internal/index"
)

// GridJoinConfig configures the PBSM-style grid join.
type GridJoinConfig struct {
	// CellsPerDim is the grid resolution; 0 derives it from the input size
	// (roughly one cell per few elements, capped).
	CellsPerDim int
}

// GridJoin is the partition-based spatial-merge join (Patel & DeWitt's PBSM
// adapted to memory, as the paper suggests): both inputs are partitioned into
// a uniform grid (with replication at cell borders, enlarged by Eps) and only
// elements sharing a cell are compared. Pairs found in several cells are
// deduplicated before returning.
func GridJoin(as, bs []index.Item, opts Options, cfg GridJoinConfig) []Pair {
	if len(as) == 0 || len(bs) == 0 {
		return nil
	}
	u := universeOf(as, bs).Expand(opts.Eps + 1e-9)
	cells := cfg.CellsPerDim
	if cells <= 0 {
		cells = defaultJoinCells(len(as) + len(bs))
	}
	part := newPartitioner(u, cells)
	aCells := part.assign(as, opts.Eps)
	bCells := part.assign(bs, opts.Eps)
	var pairs []Pair
	for cell, aList := range aCells {
		bList, ok := bCells[cell]
		if !ok {
			continue
		}
		for _, ai := range aList {
			for _, bi := range bList {
				if opts.match(as[ai], bs[bi]) {
					pairs = append(pairs, Pair{A: as[ai].ID, B: bs[bi].ID})
				}
			}
		}
	}
	return DedupPairs(pairs)
}

// SelfGridJoin is the grid join of a set with itself (e.g. synapse
// detection). Pairs are reported once with A < B.
func SelfGridJoin(items []index.Item, opts Options, cfg GridJoinConfig) []Pair {
	if len(items) == 0 {
		return nil
	}
	u := universeOf(items, nil).Expand(opts.Eps + 1e-9)
	cells := cfg.CellsPerDim
	if cells <= 0 {
		cells = defaultJoinCells(len(items))
	}
	part := newPartitioner(u, cells)
	assigned := part.assign(items, opts.Eps)
	var pairs []Pair
	for _, list := range assigned {
		for x := 0; x < len(list); x++ {
			for y := x + 1; y < len(list); y++ {
				i, j := list[x], list[y]
				if items[i].ID == items[j].ID {
					continue
				}
				if opts.match(items[i], items[j]) {
					pairs = append(pairs, orderPair(items[i].ID, items[j].ID))
				}
			}
		}
	}
	return DedupPairs(pairs)
}

func defaultJoinCells(n int) int {
	c := int(math.Cbrt(float64(n) / 4))
	if c < 2 {
		c = 2
	}
	if c > 128 {
		c = 128
	}
	return c
}

type partitioner struct {
	universe geom.AABB
	n        int
	cell     geom.Vec3
}

func newPartitioner(u geom.AABB, cells int) *partitioner {
	s := u.Size()
	return &partitioner{
		universe: u,
		n:        cells,
		cell:     geom.V(s.X/float64(cells), s.Y/float64(cells), s.Z/float64(cells)),
	}
}

func (p *partitioner) coord(v geom.Vec3) [3]int {
	var c [3]int
	for i := 0; i < 3; i++ {
		x := (v.Axis(i) - p.universe.Min.Axis(i)) / p.cell.Axis(i)
		c[i] = clampInt(int(x), 0, p.n-1)
	}
	return c
}

// assign maps each item index to every cell its Eps-expanded box overlaps.
func (p *partitioner) assign(items []index.Item, eps float64) map[[3]int][]int {
	out := make(map[[3]int][]int)
	for idx := range items {
		box := items[idx].Box.Expand(eps/2 + 1e-12)
		lo := p.coord(box.Min)
		hi := p.coord(box.Max)
		for z := lo[2]; z <= hi[2]; z++ {
			for y := lo[1]; y <= hi[1]; y++ {
				for x := lo[0]; x <= hi[0]; x++ {
					key := [3]int{x, y, z}
					out[key] = append(out[key], idx)
				}
			}
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
