package join

import (
	"sort"

	"spatialsim/internal/geom"
	"spatialsim/internal/index"
)

// The tree-based joins build a lightweight STR hierarchy over their inputs
// and then run entirely on a flattened form of it: all nodes in one
// contiguous slab addressed by int32 offsets (children of a node adjacent)
// and leaf items in structure-of-arrays storage. The join phase — the
// synchronized descent or the TOUCH subtree probes — is where virtually all
// node visits happen, so it is the part that must not chase pointers; the
// transient pointer form exists only during construction. The execution of
// both joins lives in plan.go (Plan.descend / Plan.probeSubtree); the
// functions below are the one-shot entry points.

// joinNode is a node of the transient build-time hierarchy.
type joinNode struct {
	box      geom.AABB
	children []*joinNode
	items    []index.Item // non-empty only for leaves
}

const joinFanout = 16

// flatJoinNode is one slab node of the flattened hierarchy. For a leaf,
// [first, first+count) indexes the item SoA arrays; for an inner node it
// indexes the node slab itself.
type flatJoinNode struct {
	box   geom.AABB
	first int32
	count int32
	leaf  bool
}

// flatHierarchy is the packed read-only hierarchy the join phases traverse.
type flatHierarchy struct {
	nodes     []flatJoinNode
	itemBoxes []geom.AABB
	itemIDs   []int64
}

func (h *flatHierarchy) item(i int32) index.Item {
	return index.Item{ID: h.itemIDs[i], Box: h.itemBoxes[i]}
}

// buildFlatHierarchy STR-packs the items and returns the flattened
// hierarchy (a single root leaf for empty input keeps traversals simple).
func buildFlatHierarchy(items []index.Item) *flatHierarchy {
	return flattenHierarchy(buildHierarchy(items))
}

// buildHierarchy STR-packs the items into a transient pointer hierarchy.
func buildHierarchy(items []index.Item) *joinNode {
	if len(items) == 0 {
		return &joinNode{box: geom.EmptyAABB()}
	}
	leaves := packItems(items)
	nodes := leaves
	for len(nodes) > 1 {
		nodes = packNodes(nodes)
	}
	return nodes[0]
}

// flattenHierarchy lays the pointer hierarchy out in breadth-first slab
// order, so children of a node are contiguous and the upper levels sit at
// the front of the slab.
func flattenHierarchy(root *joinNode) *flatHierarchy {
	h := &flatHierarchy{}
	type pending struct {
		n   *joinNode
		idx int32
	}
	h.nodes = append(h.nodes, flatJoinNode{})
	queue := []pending{{n: root, idx: 0}}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if len(p.n.children) == 0 {
			first := int32(len(h.itemIDs))
			for _, it := range p.n.items {
				h.itemBoxes = append(h.itemBoxes, it.Box)
				h.itemIDs = append(h.itemIDs, it.ID)
			}
			h.nodes[p.idx] = flatJoinNode{box: p.n.box, first: first, count: int32(len(p.n.items)), leaf: true}
			continue
		}
		first := int32(len(h.nodes))
		for _, c := range p.n.children {
			childIdx := int32(len(h.nodes))
			h.nodes = append(h.nodes, flatJoinNode{})
			queue = append(queue, pending{n: c, idx: childIdx})
		}
		h.nodes[p.idx] = flatJoinNode{box: p.n.box, first: first, count: int32(len(p.n.children))}
	}
	return h
}

func packItems(items []index.Item) []*joinNode {
	sorted := append([]index.Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Box.Center().X < sorted[j].Box.Center().X
	})
	var leaves []*joinNode
	for i := 0; i < len(sorted); i += joinFanout {
		chunk := sorted[i:minInt(i+joinFanout, len(sorted))]
		box := geom.EmptyAABB()
		for _, it := range chunk {
			box = box.Union(it.Box)
		}
		leaves = append(leaves, &joinNode{box: box, items: append([]index.Item(nil), chunk...)})
	}
	return leaves
}

func packNodes(nodes []*joinNode) []*joinNode {
	sorted := append([]*joinNode(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].box.Center().X < sorted[j].box.Center().X
	})
	var parents []*joinNode
	for i := 0; i < len(sorted); i += joinFanout {
		chunk := sorted[i:minInt(i+joinFanout, len(sorted))]
		box := geom.EmptyAABB()
		for _, c := range chunk {
			box = box.Union(c.box)
		}
		parents = append(parents, &joinNode{box: box, children: append([]*joinNode(nil), chunk...)})
	}
	return parents
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RTreeJoin performs a synchronized traversal join over the flattened
// hierarchies: node pairs whose boxes are within Eps are expanded
// recursively and only leaf pairs generate element comparisons. This is the
// classic index-based spatial join the paper's survey references, run on the
// cache-conscious slab layout.
func RTreeJoin(as, bs []index.Item, opts Options) []Pair {
	if len(as) == 0 || len(bs) == 0 {
		return nil
	}
	p := Planner{}.PlanWith(AlgoRTree, as, bs, opts)
	defer p.Close()
	return p.Run()
}

// SelfRTreeJoin joins a set with itself by synchronized traversal; each
// unordered pair is reported once with A < B.
func SelfRTreeJoin(items []index.Item, opts Options) []Pair {
	if len(items) < 2 {
		return nil
	}
	p := Planner{}.PlanSelfWith(AlgoRTree, items, opts)
	defer p.Close()
	return p.Run()
}

// TOUCHJoin is an in-memory join in the spirit of TOUCH (Nobari et al.,
// SIGMOD 2013), the hierarchical data-oriented partitioning join the paper's
// authors designed: a hierarchy is built over the build side (as); every
// probe element (bs) descends to the lowest hierarchy node whose box
// (expanded by Eps) could hold all its join partners and is compared only
// against the build elements in that node's subtree, pruned by child boxes.
func TOUCHJoin(as, bs []index.Item, opts Options) []Pair {
	if len(as) == 0 || len(bs) == 0 {
		return nil
	}
	p := Planner{}.PlanWith(AlgoTOUCH, as, bs, opts)
	defer p.Close()
	return p.Run()
}

// SelfTOUCHJoin joins a set with itself using TOUCH; each unordered pair is
// reported once with A < B.
func SelfTOUCHJoin(items []index.Item, opts Options) []Pair {
	if len(items) < 2 {
		return nil
	}
	p := Planner{}.PlanSelfWith(AlgoTOUCH, items, opts)
	defer p.Close()
	return p.Run()
}

// ExpectedComparisonsNestedLoop returns n*m, the comparison count of the
// nested-loop join; used by experiments to report comparison savings.
func ExpectedComparisonsNestedLoop(n, m int) float64 {
	return float64(n) * float64(m)
}

// ExpectedComparisonsSelfNestedLoop returns n*(n-1)/2.
func ExpectedComparisonsSelfNestedLoop(n int) float64 {
	return float64(n) * float64(n-1) / 2
}
