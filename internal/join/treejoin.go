package join

import (
	"sort"

	"spatialsim/internal/geom"
	"spatialsim/internal/index"
)

// joinNode is a node of the lightweight STR hierarchy the tree-based joins
// build over one input. It is deliberately separate from package rtree: the
// joins only need a static, bulk-built hierarchy, and keeping it local makes
// the join algorithms self-contained.
type joinNode struct {
	box      geom.AABB
	children []*joinNode
	items    []index.Item // non-empty only for leaves
	// assigned holds the probe-side items TOUCH assigns to this node.
	assigned []index.Item
}

const joinFanout = 16

// buildHierarchy STR-packs the items into a hierarchy and returns its root.
func buildHierarchy(items []index.Item) *joinNode {
	if len(items) == 0 {
		return &joinNode{box: geom.EmptyAABB()}
	}
	leaves := packItems(items)
	nodes := leaves
	for len(nodes) > 1 {
		nodes = packNodes(nodes)
	}
	return nodes[0]
}

func packItems(items []index.Item) []*joinNode {
	sorted := append([]index.Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Box.Center().X < sorted[j].Box.Center().X
	})
	var leaves []*joinNode
	for i := 0; i < len(sorted); i += joinFanout {
		chunk := sorted[i:minInt(i+joinFanout, len(sorted))]
		box := geom.EmptyAABB()
		for _, it := range chunk {
			box = box.Union(it.Box)
		}
		leaves = append(leaves, &joinNode{box: box, items: append([]index.Item(nil), chunk...)})
	}
	return leaves
}

func packNodes(nodes []*joinNode) []*joinNode {
	sorted := append([]*joinNode(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].box.Center().X < sorted[j].box.Center().X
	})
	var parents []*joinNode
	for i := 0; i < len(sorted); i += joinFanout {
		chunk := sorted[i:minInt(i+joinFanout, len(sorted))]
		box := geom.EmptyAABB()
		for _, c := range chunk {
			box = box.Union(c.box)
		}
		parents = append(parents, &joinNode{box: box, children: append([]*joinNode(nil), chunk...)})
	}
	return parents
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RTreeJoin performs a synchronized traversal join: hierarchies are built
// over both inputs and node pairs whose boxes are within Eps are expanded
// recursively; only leaf pairs generate element comparisons. This is the
// classic index-based spatial join the paper's survey references.
func RTreeJoin(as, bs []index.Item, opts Options) []Pair {
	if len(as) == 0 || len(bs) == 0 {
		return nil
	}
	ra := buildHierarchy(as)
	rb := buildHierarchy(bs)
	var out []Pair
	var recurse func(a, b *joinNode)
	recurse = func(a, b *joinNode) {
		if opts.Counters != nil {
			opts.Counters.AddTreeIntersectTests(1)
		}
		if a.box.Distance2(b.box) > opts.Eps*opts.Eps {
			return
		}
		switch {
		case a.items != nil && b.items != nil:
			for _, ia := range a.items {
				for _, ib := range b.items {
					if opts.match(ia, ib) {
						out = append(out, Pair{A: ia.ID, B: ib.ID})
					}
				}
			}
		case a.items != nil:
			for _, c := range b.children {
				recurse(a, c)
			}
		case b.items != nil:
			for _, c := range a.children {
				recurse(c, b)
			}
		default:
			for _, ca := range a.children {
				for _, cb := range b.children {
					recurse(ca, cb)
				}
			}
		}
	}
	recurse(ra, rb)
	return out
}

// SelfRTreeJoin joins a set with itself by synchronized traversal.
func SelfRTreeJoin(items []index.Item, opts Options) []Pair {
	pairs := RTreeJoin(items, items, opts)
	out := pairs[:0]
	for _, p := range pairs {
		if p.A == p.B {
			continue
		}
		out = append(out, orderPair(p.A, p.B))
	}
	return DedupPairs(out)
}

// TOUCHJoin is an in-memory join in the spirit of TOUCH (Nobari et al.,
// SIGMOD 2013), the hierarchical data-oriented partitioning join the paper's
// authors designed: a hierarchy is built over the build side (as); every
// probe element (bs) is assigned to the lowest hierarchy node whose box
// (expanded by Eps) contains it; finally each node's assigned probe elements
// are compared only against the build elements stored in that node's subtree,
// pruned by child boxes. Probe elements that fit no node are compared at the
// root.
func TOUCHJoin(as, bs []index.Item, opts Options) []Pair {
	if len(as) == 0 || len(bs) == 0 {
		return nil
	}
	root := buildHierarchy(as)
	// Assignment phase.
	for _, b := range bs {
		assignTouch(root, b, opts.Eps)
	}
	// Join phase.
	var out []Pair
	var walk func(n *joinNode)
	walk = func(n *joinNode) {
		for _, b := range n.assigned {
			out = joinAgainstSubtree(n, b, opts, out)
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(root)
	return out
}

// assignTouch pushes b down the hierarchy as long as exactly one child can
// contain join partners for it: the descent stops (and b is assigned) at the
// first node where zero or more than one child box intersects b's
// Eps-expanded box. This guarantees every potential partner lies in the
// subtree b is assigned to.
func assignTouch(n *joinNode, b index.Item, eps float64) {
	expanded := b.Box.Expand(eps)
	cur := n
	for {
		var next *joinNode
		matches := 0
		for _, c := range cur.children {
			if c.box.Intersects(expanded) {
				matches++
				next = c
				if matches > 1 {
					break
				}
			}
		}
		if matches != 1 {
			cur.assigned = append(cur.assigned, b)
			return
		}
		cur = next
	}
}

// joinAgainstSubtree compares b against every build element in n's subtree,
// pruning subtrees whose box is farther than Eps.
func joinAgainstSubtree(n *joinNode, b index.Item, opts Options, out []Pair) []Pair {
	if opts.Counters != nil {
		opts.Counters.AddTreeIntersectTests(1)
	}
	if n.box.Distance2(b.Box) > opts.Eps*opts.Eps {
		return out
	}
	for _, a := range n.items {
		if opts.match(a, b) {
			out = append(out, Pair{A: a.ID, B: b.ID})
		}
	}
	for _, c := range n.children {
		out = joinAgainstSubtree(c, b, opts, out)
	}
	return out
}

// SelfTOUCHJoin joins a set with itself using TOUCH.
func SelfTOUCHJoin(items []index.Item, opts Options) []Pair {
	pairs := TOUCHJoin(items, items, opts)
	out := pairs[:0]
	for _, p := range pairs {
		if p.A == p.B {
			continue
		}
		out = append(out, orderPair(p.A, p.B))
	}
	return DedupPairs(out)
}

// ExpectedComparisonsNestedLoop returns n*m, the comparison count of the
// nested-loop join; used by experiments to report comparison savings.
func ExpectedComparisonsNestedLoop(n, m int) float64 {
	return float64(n) * float64(m)
}

// ExpectedComparisonsSelfNestedLoop returns n*(n-1)/2.
func ExpectedComparisonsSelfNestedLoop(n int) float64 {
	return float64(n) * float64(n-1) / 2
}
