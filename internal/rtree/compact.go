package rtree

import (
	"sync"

	"spatialsim/internal/geom"
	"spatialsim/internal/index"
	"spatialsim/internal/instrument"
)

// Compact is a packed, read-optimised snapshot of an R-Tree. All nodes live
// in one contiguous slab addressed by int32 offsets (children of a node are
// adjacent, so a node test and the descent to its children stay within a few
// cache lines) and leaf entries are stored as structure-of-arrays — one
// []geom.AABB for the boxes the hot loop tests and one []int64 for the ids it
// only reads on a hit. This is the paper's Section 3.3 memory layout argument
// applied to the R-Tree: in memory the index is bound by per-test cost and
// cache misses, not page I/O, so the traversal structure itself must be
// cache-conscious.
//
// A Compact is immutable and safe for unboundedly concurrent readers.
// RangeVisit performs zero heap allocations per call; KNNInto allocates only
// until its pooled traversal heap is warm.
type Compact struct {
	nodes     []compactNode
	leafBoxes []geom.AABB
	leafIDs   []int64
	// leafStart is the slab index of the first leaf node. The R-Tree is
	// height-balanced and nodes are laid out breadth-first, so the leaves
	// form a contiguous suffix of the slab and leafness is a single index
	// comparison — range traversal exploits this to scan leaves inline from
	// their parent instead of routing them through the stack.
	leafStart int32
	size      int
	height    int
	// heapCap sizes the pooled KNN traversal heaps (4x the source tree's
	// fan-out). It is part of the serialized form, so a decoded snapshot pools
	// heaps exactly like the one that was frozen.
	heapCap  int
	counters instrument.Counters
	knnPool  sync.Pool // *compactKNNState
}

// initPools installs the pool constructors (shared by Freeze and the binary
// decoder). The closure captures the snapshot itself, which is fine — unlike
// capturing the mutable source tree, it pins nothing beyond the snapshot's
// own lifetime.
func (c *Compact) initPools() {
	c.knnPool.New = func() interface{} {
		return &compactKNNState{heap: make([]compactHeapEnt, 0, c.heapCap)}
	}
}

// compactNode is one slab node. For a leaf, [first, first+count) indexes the
// leaf SoA arrays; for an inner node it indexes the node slab itself.
type compactNode struct {
	box   geom.AABB
	first int32
	count int32
	leaf  bool
}

// compactStackCap bounds the traversal stack kept on the goroutine stack.
// The worst case is height*(maxEntries-1)+1; with the default fan-out of 16
// a tree of a billion entries is 8 levels tall, so 128 leaves margin while
// keeping the per-call array zeroing cheap (512 B). Overflow falls back to a
// (allocating) slice grow, preserving correctness.
const compactStackCap = 128

// Freeze returns a packed snapshot of the tree's current contents. The
// snapshot is independent: later tree mutations do not affect it. Nodes are
// laid out in breadth-first order, which keeps every node's children
// contiguous and places the upper levels — the entries every query tests —
// at the front of the slab.
func (t *Tree) Freeze() *Compact {
	c := &Compact{size: t.size, height: t.height, heapCap: 4 * t.maxEntries}
	c.initPools()
	if t.size == 0 {
		return c
	}
	type pending struct {
		n   *node
		idx int32
	}
	c.nodes = append(c.nodes, compactNode{})
	queue := []pending{{n: t.root, idx: 0}}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		box := geom.EmptyAABB()
		if p.n.leaf {
			first := int32(len(c.leafIDs))
			for i := range p.n.entries {
				c.leafBoxes = append(c.leafBoxes, p.n.entries[i].box)
				c.leafIDs = append(c.leafIDs, p.n.entries[i].id)
				box = box.Union(p.n.entries[i].box)
			}
			c.sortLeafRun(first, int32(len(c.leafIDs)))
			c.nodes[p.idx] = compactNode{box: box, first: first, count: int32(len(p.n.entries)), leaf: true}
			continue
		}
		first := int32(len(c.nodes))
		for i := range p.n.entries {
			childIdx := int32(len(c.nodes))
			c.nodes = append(c.nodes, compactNode{})
			queue = append(queue, pending{n: p.n.entries[i].child, idx: childIdx})
			box = box.Union(p.n.entries[i].box)
		}
		c.nodes[p.idx] = compactNode{box: box, first: first, count: int32(len(p.n.entries))}
	}
	c.leafStart = int32(len(c.nodes))
	for i := range c.nodes {
		if c.nodes[i].leaf {
			c.leafStart = int32(i)
			break
		}
	}
	return c
}

// sortLeafRun insertion-sorts one leaf's SoA run [first, end) by box Min.X
// (runs hold at most maxEntries entries, where insertion sort is optimal and
// allocation-free). Sorted runs let range scans stop at the first box whose
// Min.X lies beyond the query — on average half of a boundary leaf's
// entries are never tested at all.
func (c *Compact) sortLeafRun(first, end int32) {
	for a := first + 1; a < end; a++ {
		for b := a; b > first && c.leafBoxes[b].Min.X < c.leafBoxes[b-1].Min.X; b-- {
			c.leafBoxes[b], c.leafBoxes[b-1] = c.leafBoxes[b-1], c.leafBoxes[b]
			c.leafIDs[b], c.leafIDs[b-1] = c.leafIDs[b-1], c.leafIDs[b]
		}
	}
}

// FreezeItems bulk-loads the items with STR and returns the packed snapshot
// directly — the one-call build path for read-mostly phases.
func FreezeItems(items []index.Item, cfg Config) *Compact {
	t := New(cfg)
	t.BulkLoad(items)
	return t.Freeze()
}

// Name implements index.ReadIndex.
func (c *Compact) Name() string { return "rtree-compact" }

// Len implements index.ReadIndex.
func (c *Compact) Len() int { return c.size }

// Height returns the height of the frozen tree.
func (c *Compact) Height() int { return c.height }

// Bounds returns the bounding box of the whole snapshot, cached at freeze
// time (no entry scan).
func (c *Compact) Bounds() geom.AABB {
	if len(c.nodes) == 0 {
		return geom.EmptyAABB()
	}
	return c.nodes[0].box
}

// Counters returns the snapshot's traversal counters.
func (c *Compact) Counters() *instrument.Counters { return &c.counters }

// RangeVisit implements index.RangeVisitor: an iterative traversal over the
// node slab with a fixed-size stack, performing zero heap allocations per
// call. Cost accounting matches the mutable tree's Search (tree-level tests
// against inner entries, element-level tests against leaf entries), but the
// counts are accumulated in locals and flushed once per call — the mutable
// tree pays several atomic adds per visited node, which on a parallel query
// batch is contended cache-line traffic the flat path avoids.
func (c *Compact) RangeVisit(query geom.AABB, visit func(index.Item) bool) {
	if c.size == 0 {
		return
	}
	var nodeVisits, treeTests, elemTests, results int64
	defer func() {
		c.counters.AddNodeVisits(nodeVisits)
		c.counters.AddTreeIntersectTests(treeTests)
		c.counters.AddElemIntersectTests(elemTests)
		c.counters.AddElementsTouched(elemTests)
		c.counters.AddResults(results)
	}()
	treeTests++
	if !query.Intersects(c.nodes[0].box) {
		return
	}
	var stackArr [compactStackCap]int32
	stack := stackArr[:0]
	stack = append(stack, 0)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &c.nodes[ni]
		nodeVisits++
		if n.leaf { // only the root can reach the stack as a leaf
			boxes := c.leafBoxes[n.first : n.first+n.count]
			ids := c.leafIDs[n.first : n.first+n.count]
			for i := range boxes {
				if boxes[i].Min.X > query.Max.X {
					break // sorted by Min.X: nothing further can intersect
				}
				elemTests++
				if query.Intersects(boxes[i]) {
					results++
					if !visit(index.Item{ID: ids[i], Box: boxes[i]}) {
						return
					}
				}
			}
			continue
		}
		treeTests += int64(n.count)
		children := c.nodes[n.first : n.first+n.count]
		for i := range children {
			if !query.Intersects(children[i].box) {
				continue
			}
			ci := n.first + int32(i)
			if ci < c.leafStart {
				stack = append(stack, ci)
				continue
			}
			// Leaf child: scan its SoA run inline instead of round-tripping
			// through the stack (leaves are the bulk of visited nodes).
			ch := &children[i]
			nodeVisits++
			boxes := c.leafBoxes[ch.first : ch.first+ch.count]
			ids := c.leafIDs[ch.first : ch.first+ch.count]
			for j := range boxes {
				if boxes[j].Min.X > query.Max.X {
					break // sorted by Min.X: nothing further can intersect
				}
				elemTests++
				if query.Intersects(boxes[j]) {
					results++
					if !visit(index.Item{ID: ids[j], Box: boxes[j]}) {
						return
					}
				}
			}
		}
	}
}

// Search mirrors index.Index's Search signature so a Compact can stand in for
// the mutable tree in read-only experiment code.
func (c *Compact) Search(query geom.AABB, fn func(index.Item) bool) {
	c.RangeVisit(query, fn)
}

// compactHeapEnt is one entry of the best-first KNN priority queue. ref >= 0
// addresses a slab node; ref < 0 addresses leaf entry ^ref. Keeping the queue
// entry at 16 bytes (vs. the boxed 72-byte entries of the pointer tree's
// container/heap) is most of the KNN speedup.
type compactHeapEnt struct {
	dist float64
	ref  int32
}

type compactKNNState struct {
	heap []compactHeapEnt
}

// KNNInto implements index.KNNer with the classic best-first traversal over
// the slab. The priority queue is a manual binary heap taken from a pool, so
// a warm call performs zero heap allocations (results are appended to the
// caller-owned buf).
func (c *Compact) KNNInto(p geom.Vec3, k int, buf []index.Item) []index.Item {
	if k <= 0 || c.size == 0 {
		return buf
	}
	st := c.knnPool.Get().(*compactKNNState)
	h := st.heap[:0]
	h = pushHeapEnt(h, compactHeapEnt{dist: c.nodes[0].box.Distance2ToPoint(p), ref: 0})
	var nodeVisits, treeTests, elemTests int64
	found := 0
	for len(h) > 0 && found < k {
		e := h[0]
		h = popHeapEnt(h)
		if e.ref < 0 {
			i := ^e.ref
			buf = append(buf, index.Item{ID: c.leafIDs[i], Box: c.leafBoxes[i]})
			found++
			continue
		}
		n := &c.nodes[e.ref]
		nodeVisits++
		if n.leaf {
			elemTests += int64(n.count)
			for i := n.first; i < n.first+n.count; i++ {
				h = pushHeapEnt(h, compactHeapEnt{dist: c.leafBoxes[i].Distance2ToPoint(p), ref: ^i})
			}
		} else {
			treeTests += int64(n.count)
			for i := n.first; i < n.first+n.count; i++ {
				h = pushHeapEnt(h, compactHeapEnt{dist: c.nodes[i].box.Distance2ToPoint(p), ref: i})
			}
		}
	}
	st.heap = h
	c.knnPool.Put(st)
	// Flushed once per call, like RangeVisit: per-node atomic adds would be
	// contended cache-line traffic on parallel KNN batches.
	c.counters.AddNodeVisits(nodeVisits)
	c.counters.AddTreeIntersectTests(treeTests)
	c.counters.AddElemIntersectTests(elemTests)
	return buf
}

// KNN mirrors index.Index's KNN signature (allocating a fresh result slice).
func (c *Compact) KNN(p geom.Vec3, k int) []index.Item {
	if k <= 0 || c.size == 0 {
		return nil
	}
	return c.KNNInto(p, k, make([]index.Item, 0, k))
}

func pushHeapEnt(h []compactHeapEnt, e compactHeapEnt) []compactHeapEnt {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].dist <= h[i].dist {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func popHeapEnt(h []compactHeapEnt) []compactHeapEnt {
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h[l].dist < h[min].dist {
			min = l
		}
		if r < len(h) && h[r].dist < h[min].dist {
			min = r
		}
		if min == i {
			return h
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

var _ index.ReadIndex = (*Compact)(nil)
