package rtree

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"unsafe"

	"spatialsim/internal/geom"
	"spatialsim/internal/index"
)

func alignOf(b []byte) uintptr { return uintptr(unsafe.Pointer(&b[0])) }

// alignedBlob serializes c into an 8-byte-aligned buffer (mmap regions are
// page-aligned; heap test buffers need a nudge).
func alignedBlob(c *Compact) []byte {
	raw := c.AppendBinary(nil)
	buf := make([]byte, len(raw)+8)
	for off := 0; off < 8; off++ {
		if addrAligned(buf[off:]) {
			return append(buf[off:off:off+len(raw)], raw...)
		}
	}
	return raw
}

func addrAligned(b []byte) bool {
	if len(b) == 0 {
		return true
	}
	return alignOf(b)%8 == 0
}

func TestOverlayCompactMatchesDecode(t *testing.T) {
	if !OverlaySupported() {
		t.Skip("overlay unsupported on this platform")
	}
	for _, n := range []int{0, 1, 5, 400, 3000} {
		items := randomItems(n, int64(n)+11)
		c := FreezeItems(items, Config{})
		blob := alignedBlob(c)
		ov, consumed, err := OverlayCompact(blob)
		if err != nil {
			t.Fatalf("n=%d: overlay: %v", n, err)
		}
		if consumed != c.BinarySize() {
			t.Fatalf("n=%d: consumed %d, want %d", n, consumed, c.BinarySize())
		}
		if ov.Len() != c.Len() || ov.Height() != c.Height() {
			t.Fatalf("n=%d: len/height %d/%d, want %d/%d", n, ov.Len(), ov.Height(), c.Len(), c.Height())
		}
		// The overlay must re-encode byte-identically (it IS the bytes).
		if !bytes.Equal(blob[:consumed], ov.AppendBinary(nil)) {
			t.Fatalf("n=%d: re-encode differs", n)
		}
		if n > 0 {
			// Zero copy means aliasing: the overlay's root box lives inside blob.
			if got := ov.Bounds(); got != c.Bounds() {
				t.Fatalf("n=%d: bounds %v, want %v", n, got, c.Bounds())
			}
		}
		queries := []geom.AABB{
			geom.NewAABB(geom.V(10, 10, 10), geom.V(40, 40, 40)),
			geom.NewAABB(geom.V(0, 0, 0), geom.V(100, 100, 100)),
			geom.NewAABB(geom.V(90, 90, 90), geom.V(91, 91, 91)),
			geom.NewAABB(geom.V(-10, -10, -10), geom.V(-1, -1, -1)),
		}
		for _, q := range queries {
			a := index.VisitAll(c, q)
			b := index.VisitAll(ov, q)
			if len(a) != len(b) {
				t.Fatalf("n=%d: range results %d vs %d", n, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d: range result %d: %v vs %v", n, i, a[i], b[i])
				}
			}
		}
		for _, p := range []geom.Vec3{geom.V(50, 50, 50), geom.V(-5, 0, 200)} {
			a := c.KNN(p, 10)
			b := ov.KNN(p, 10)
			if len(a) != len(b) {
				t.Fatalf("n=%d: knn results %d vs %d", n, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d: knn result %d: %v vs %v", n, i, a[i], b[i])
				}
			}
		}
	}
}

// TestRangeVisitBatchConformance pins the batch branch-free kernel to
// RangeVisit: same results, same order, on randomized workloads including
// early-terminating visitors.
func TestRangeVisitBatchConformance(t *testing.T) {
	items := randomItems(5000, 23)
	c := FreezeItems(items, Config{})
	r := rand.New(rand.NewSource(99))
	for q := 0; q < 200; q++ {
		lo := geom.V(r.Float64()*100, r.Float64()*100, r.Float64()*100)
		ext := geom.V(r.Float64()*20, r.Float64()*20, r.Float64()*20)
		query := geom.NewAABB(lo, lo.Add(ext))

		var a, b []index.Item
		c.RangeVisit(query, func(it index.Item) bool { a = append(a, it); return true })
		c.RangeVisitBatch(query, func(it index.Item) bool { b = append(b, it); return true })
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d result %d: %v vs %v", q, i, a[i], b[i])
			}
		}

		// Early termination: both kernels must stop after the same prefix.
		if len(a) > 1 {
			stop := len(a) / 2
			var p1, p2 []index.Item
			c.RangeVisit(query, func(it index.Item) bool { p1 = append(p1, it); return len(p1) < stop })
			c.RangeVisitBatch(query, func(it index.Item) bool { p2 = append(p2, it); return len(p2) < stop })
			if len(p1) != stop || len(p2) != stop {
				t.Fatalf("query %d: early-stop prefixes %d/%d, want %d", q, len(p1), len(p2), stop)
			}
			for i := range p1 {
				if p1[i] != p2[i] {
					t.Fatalf("query %d prefix %d: %v vs %v", q, i, p1[i], p2[i])
				}
			}
		}
	}
}

// TestRangeVisitBatchWideLeaves covers leaf runs wider than one 64-entry
// mask chunk (custom fan-out), where the chunked sweep and the early break
// at chunk granularity actually engage.
func TestRangeVisitBatchWideLeaves(t *testing.T) {
	items := randomItems(4000, 31)
	c := FreezeItems(items, Config{MaxEntries: 200, MinEntries: 80})
	r := rand.New(rand.NewSource(7))
	for q := 0; q < 100; q++ {
		lo := geom.V(r.Float64()*100, r.Float64()*100, r.Float64()*100)
		ext := geom.V(r.Float64()*40, r.Float64()*40, r.Float64()*40)
		query := geom.NewAABB(lo, lo.Add(ext))
		var a, b []index.Item
		c.RangeVisit(query, func(it index.Item) bool { a = append(a, it); return true })
		c.RangeVisitBatch(query, func(it index.Item) bool { b = append(b, it); return true })
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d result %d: %v vs %v", q, i, a[i], b[i])
			}
		}
	}
}

func TestOverlayCompactRejectsCorruption(t *testing.T) {
	if !OverlaySupported() {
		t.Skip("overlay unsupported on this platform")
	}
	c := FreezeItems(randomItems(200, 3), Config{})
	base := alignedBlob(c)

	corrupt := func(mut func(b []byte)) []byte {
		b := make([]byte, len(base)+8)
		var blob []byte
		for off := 0; off < 8; off++ {
			if addrAligned(b[off:]) {
				blob = append(b[off:off:off+len(base)], base...)
				break
			}
		}
		mut(blob)
		return blob
	}

	cases := map[string]func(b []byte){
		"magic":          func(b []byte) { b[0] ^= 0xFF },
		"node count":     func(b []byte) { b[4] = 0xFF; b[5] = 0xFF },
		"leaf count":     func(b []byte) { b[8] = 0xFF; b[9] = 0xFF },
		"leafstart":      func(b []byte) { b[12] = 0xFF },
		"heap cap":       func(b []byte) { b[24] = 0xFF; b[25] = 0xFF; b[26] = 0xFF },
		"node first":     func(b []byte) { b[compactHeaderSize+48] = 0xFF },
		"node count ref": func(b []byte) { b[compactHeaderSize+52] = 0xFF },
		"leaf flag 2":    func(b []byte) { b[compactHeaderSize+56] = 2 },
		"truncated":      func(b []byte) { b[4]++ }, // declares one more node than fits
	}
	for name, mut := range cases {
		blob := corrupt(mut)
		ov, _, err := OverlayCompact(blob)
		if err == nil {
			// Whatever decoded must still traverse safely (validation may
			// legitimately accept a mutation that stays in bounds) — but for
			// these targeted mutations decode must fail.
			t.Fatalf("%s: overlay accepted corrupt snapshot (len %d)", name, ov.Len())
		}
		if errors.Is(err, ErrOverlayUnsupported) {
			t.Fatalf("%s: corruption misreported as unsupported: %v", name, err)
		}
	}
}

func TestOverlayCompactMisaligned(t *testing.T) {
	if !OverlaySupported() {
		t.Skip("overlay unsupported on this platform")
	}
	c := FreezeItems(randomItems(50, 5), Config{})
	base := alignedBlob(c)
	// Shift by one byte: decoding must refuse the overlay (unsupported, not
	// corrupt) so callers fall back to the copying decoder.
	buf := make([]byte, len(base)+9)
	var blob []byte
	for off := 0; off < 9; off++ {
		if !addrAligned(buf[off:]) {
			blob = append(buf[off:off:off+len(base)], base...)
			break
		}
	}
	_, _, err := OverlayCompact(blob)
	if !errors.Is(err, ErrOverlayUnsupported) {
		t.Fatalf("misaligned overlay: err = %v, want ErrOverlayUnsupported", err)
	}
	if dec, _, derr := DecodeCompact(blob); derr != nil || dec.Len() != c.Len() {
		t.Fatalf("fallback decode of misaligned buffer failed: %v", derr)
	}
}

func TestOverlayRangeVisitZeroAllocs(t *testing.T) {
	if !OverlaySupported() {
		t.Skip("overlay unsupported on this platform")
	}
	if raceEnabled {
		t.Skip("allocation counts are skewed by race instrumentation")
	}
	c := FreezeItems(randomItems(3000, 17), Config{})
	ov, _, err := OverlayCompact(alignedBlob(c))
	if err != nil {
		t.Fatal(err)
	}
	query := geom.NewAABB(geom.V(20, 20, 20), geom.V(60, 60, 60))
	var n int
	allocs := testing.AllocsPerRun(100, func() {
		n = 0
		ov.RangeVisitBatch(query, func(index.Item) bool { n++; return true })
	})
	if allocs != 0 {
		t.Fatalf("RangeVisitBatch allocates %v times per run, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("query returned nothing; alloc gate is vacuous")
	}
	// Warm KNN must also be allocation-free apart from the caller buffer.
	buf := make([]index.Item, 0, 16)
	ov.KNNInto(geom.V(50, 50, 50), 10, buf) // warm the pool
	allocs = testing.AllocsPerRun(100, func() {
		buf = ov.KNNInto(geom.V(50, 50, 50), 10, buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("warm KNNInto allocates %v times per run, want 0", allocs)
	}
}
