package rtree

import (
	"sort"
	"testing"

	"spatialsim/internal/geom"
	"spatialsim/internal/index"
)

func queryBoxes(n int, seed int64) []geom.AABB {
	items := randomItems(n, seed)
	boxes := make([]geom.AABB, n)
	for i, it := range items {
		boxes[i] = it.Box.Expand(1.5)
	}
	return boxes
}

func TestCompactRangeMatchesMutable(t *testing.T) {
	items := randomItems(5000, 7)
	tr := NewDefault()
	tr.BulkLoad(items)
	c := tr.Freeze()
	if c.Len() != tr.Len() {
		t.Fatalf("compact Len = %d, want %d", c.Len(), tr.Len())
	}
	if got, want := c.Height(), tr.Height(); got != want {
		t.Fatalf("compact Height = %d, want %d", got, want)
	}
	for qi, q := range queryBoxes(60, 8) {
		want := index.SearchIDs(tr, q)
		var got []int64
		c.RangeVisit(q, func(it index.Item) bool {
			got = append(got, it.ID)
			return true
		})
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: result %d = id %d, want %d", qi, i, got[i], want[i])
			}
		}
	}
}

func TestCompactSnapshotIndependentOfLaterMutation(t *testing.T) {
	items := randomItems(1000, 9)
	tr := NewDefault()
	tr.BulkLoad(items)
	c := tr.Freeze()
	q := universe()
	before := len(index.VisitAll(c, q))
	// Mutate the source tree heavily: the snapshot must not notice.
	for _, it := range items[:500] {
		tr.Delete(it.ID, it.Box)
	}
	tr.Insert(99999, geom.AABBFromCenter(geom.V(50, 50, 50), geom.V(1, 1, 1)))
	after := len(index.VisitAll(c, q))
	if before != after || before != len(items) {
		t.Fatalf("snapshot changed under mutation: before=%d after=%d want=%d", before, after, len(items))
	}
}

func TestCompactKNNMatchesMutable(t *testing.T) {
	items := randomItems(3000, 10)
	tr := NewDefault()
	tr.BulkLoad(items)
	c := tr.Freeze()
	points := []geom.Vec3{
		geom.V(1, 1, 1), geom.V(50, 50, 50), geom.V(99, 2, 70), geom.V(-5, 120, 50),
	}
	for _, p := range points {
		for _, k := range []int{1, 8, 33} {
			want := tr.KNN(p, k)
			got := c.KNNInto(p, k, nil)
			if len(got) != len(want) {
				t.Fatalf("k=%d: got %d results, want %d", k, len(got), len(want))
			}
			for i := range got {
				// Distances must agree (ids may differ on exact ties).
				gd := got[i].Box.Distance2ToPoint(p)
				wd := want[i].Box.Distance2ToPoint(p)
				if gd != wd {
					t.Fatalf("k=%d rank %d: dist2 %g, want %g", k, i, gd, wd)
				}
			}
		}
	}
}

func TestCompactEmptyAndTinyTrees(t *testing.T) {
	empty := NewDefault().Freeze()
	if got := index.VisitAll(empty, universe()); len(got) != 0 {
		t.Fatalf("empty compact returned %d results", len(got))
	}
	if got := empty.KNNInto(geom.V(0, 0, 0), 5, nil); len(got) != 0 {
		t.Fatalf("empty compact KNN returned %d results", len(got))
	}
	one := NewDefault()
	one.Insert(42, geom.AABBFromCenter(geom.V(1, 2, 3), geom.V(1, 1, 1)))
	c := one.Freeze()
	if got := index.VisitAll(c, universe()); len(got) != 1 || got[0].ID != 42 {
		t.Fatalf("single-item compact: got %+v", got)
	}
}

func TestCompactRangeVisitZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	items := randomItems(20000, 11)
	c := FreezeItems(items, Config{})
	queries := queryBoxes(16, 12)
	var sink int64
	allocs := testing.AllocsPerRun(100, func() {
		for _, q := range queries {
			c.RangeVisit(q, func(it index.Item) bool {
				sink += it.ID
				return true
			})
		}
	})
	if allocs != 0 {
		t.Fatalf("RangeVisit allocated %.1f times per run, want 0", allocs)
	}
	_ = sink
}

func TestCompactKNNIntoZeroAllocsWhenWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	items := randomItems(20000, 13)
	c := FreezeItems(items, Config{})
	buf := make([]index.Item, 0, 16)
	p := geom.V(42, 17, 63)
	// Warm the pooled heap once.
	buf = c.KNNInto(p, 16, buf[:0])
	allocs := testing.AllocsPerRun(100, func() {
		buf = c.KNNInto(p, 16, buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("warm KNNInto allocated %.1f times per run, want 0", allocs)
	}
}

func TestMutableRangeVisitZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	items := randomItems(20000, 14)
	tr := NewDefault()
	tr.BulkLoad(items)
	queries := queryBoxes(16, 15)
	var sink int64
	allocs := testing.AllocsPerRun(100, func() {
		for _, q := range queries {
			tr.RangeVisit(q, func(it index.Item) bool {
				sink += it.ID
				return true
			})
		}
	})
	if allocs != 0 {
		t.Fatalf("mutable RangeVisit allocated %.1f times per run, want 0", allocs)
	}
	_ = sink
}
