package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"spatialsim/internal/datagen"
	"spatialsim/internal/geom"
	"spatialsim/internal/index"
)

func universe() geom.AABB { return geom.NewAABB(geom.V(0, 0, 0), geom.V(100, 100, 100)) }

func randomItems(n int, seed int64) []index.Item {
	r := rand.New(rand.NewSource(seed))
	items := make([]index.Item, n)
	for i := range items {
		c := geom.V(r.Float64()*100, r.Float64()*100, r.Float64()*100)
		half := geom.V(r.Float64()*0.5, r.Float64()*0.5, r.Float64()*0.5)
		items[i] = index.Item{ID: int64(i), Box: geom.AABBFromCenter(c, half)}
	}
	return items
}

// bruteRange is the ground truth for range queries.
func bruteRange(items []index.Item, q geom.AABB) map[int64]bool {
	out := make(map[int64]bool)
	for _, it := range items {
		if q.Intersects(it.Box) {
			out[it.ID] = true
		}
	}
	return out
}

func sameIDs(t *testing.T, got []int64, want map[int64]bool, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", context, len(got), len(want))
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("%s: unexpected id %d in results", context, id)
		}
	}
}

func TestInsertAndSearchMatchesBruteForce(t *testing.T) {
	items := randomItems(2000, 1)
	tr := NewDefault()
	for _, it := range items {
		tr.Insert(it.ID, it.Box)
	}
	if tr.Len() != len(items) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(items))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	r := rand.New(rand.NewSource(2))
	for q := 0; q < 50; q++ {
		c := geom.V(r.Float64()*100, r.Float64()*100, r.Float64()*100)
		query := geom.AABBFromCenter(c, geom.V(5, 5, 5))
		got := index.SearchIDs(tr, query)
		sameIDs(t, got, bruteRange(items, query), "insert+search")
	}
}

func TestBulkLoadMatchesBruteForce(t *testing.T) {
	items := randomItems(3000, 3)
	tr := NewDefault()
	tr.BulkLoad(items)
	if tr.Len() != len(items) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	r := rand.New(rand.NewSource(4))
	for q := 0; q < 50; q++ {
		c := geom.V(r.Float64()*100, r.Float64()*100, r.Float64()*100)
		query := geom.AABBFromCenter(c, geom.V(3, 3, 3))
		got := index.SearchIDs(tr, query)
		sameIDs(t, got, bruteRange(items, query), "bulkload+search")
	}
}

func TestBulkLoadEmptyAndSmall(t *testing.T) {
	tr := NewDefault()
	tr.BulkLoad(nil)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatal("empty bulk load should produce empty tree")
	}
	if got := index.SearchIDs(tr, universe()); len(got) != 0 {
		t.Fatal("empty tree returned results")
	}
	// Fewer items than one node.
	items := randomItems(5, 9)
	tr.BulkLoad(items)
	if tr.Len() != 5 || tr.Height() != 1 {
		t.Fatalf("small bulk load: len=%d height=%d", tr.Len(), tr.Height())
	}
	got := index.SearchIDs(tr, universe())
	if len(got) != 5 {
		t.Fatalf("small search = %d results", len(got))
	}
}

func TestDelete(t *testing.T) {
	items := randomItems(1000, 5)
	tr := NewDefault()
	for _, it := range items {
		tr.Insert(it.ID, it.Box)
	}
	// Delete every third element.
	deleted := make(map[int64]bool)
	for i := 0; i < len(items); i += 3 {
		if !tr.Delete(items[i].ID, items[i].Box) {
			t.Fatalf("Delete(%d) returned false", items[i].ID)
		}
		deleted[items[i].ID] = true
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after delete: %v", err)
	}
	if tr.Len() != len(items)-len(deleted) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(items)-len(deleted))
	}
	// Deleted elements must not appear in results; remaining must.
	got := index.SearchIDs(tr, universe())
	if len(got) != len(items)-len(deleted) {
		t.Fatalf("full search = %d, want %d", len(got), len(items)-len(deleted))
	}
	for _, id := range got {
		if deleted[id] {
			t.Fatalf("deleted id %d still present", id)
		}
	}
	// Deleting a non-existent id returns false.
	if tr.Delete(99999, universe()) {
		t.Fatal("Delete of missing id returned true")
	}
	// Delete everything.
	for i, it := range items {
		if i%3 == 0 {
			continue
		}
		if !tr.Delete(it.ID, it.Box) {
			t.Fatalf("Delete(%d) failed", it.ID)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after deleting all = %d", tr.Len())
	}
	if got := index.SearchIDs(tr, universe()); len(got) != 0 {
		t.Fatal("empty tree still returns results")
	}
}

func TestUpdateMovesElements(t *testing.T) {
	items := randomItems(500, 6)
	tr := NewDefault()
	for _, it := range items {
		tr.Insert(it.ID, it.Box)
	}
	// Move every element by a small offset, like a plasticity step.
	r := rand.New(rand.NewSource(7))
	for i := range items {
		delta := geom.V(r.Float64()*0.1-0.05, r.Float64()*0.1-0.05, r.Float64()*0.1-0.05)
		newBox := items[i].Box.Translate(delta)
		tr.Update(items[i].ID, items[i].Box, newBox)
		items[i].Box = newBox
	}
	if tr.Len() != len(items) {
		t.Fatalf("Len after updates = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after updates: %v", err)
	}
	for q := 0; q < 30; q++ {
		c := geom.V(r.Float64()*100, r.Float64()*100, r.Float64()*100)
		query := geom.AABBFromCenter(c, geom.V(4, 4, 4))
		sameIDs(t, index.SearchIDs(tr, query), bruteRange(items, query), "after update")
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	items := randomItems(1500, 8)
	tr := NewDefault()
	tr.BulkLoad(items)
	r := rand.New(rand.NewSource(9))
	for q := 0; q < 30; q++ {
		p := geom.V(r.Float64()*100, r.Float64()*100, r.Float64()*100)
		k := 1 + r.Intn(20)
		got := tr.KNN(p, k)
		if len(got) != k {
			t.Fatalf("KNN returned %d items, want %d", len(got), k)
		}
		// Brute-force distances.
		dists := make([]float64, len(items))
		for i, it := range items {
			dists[i] = it.Box.Distance2ToPoint(p)
		}
		sort.Float64s(dists)
		for i, it := range got {
			d := it.Box.Distance2ToPoint(p)
			if d > dists[k-1]+1e-9 {
				t.Fatalf("KNN result %d at distance %v exceeds k-th smallest %v", i, d, dists[k-1])
			}
			if i > 0 {
				prev := got[i-1].Box.Distance2ToPoint(p)
				if prev > d+1e-12 {
					t.Fatalf("KNN results not ordered by distance")
				}
			}
		}
	}
	// Edge cases.
	if tr.KNN(geom.V(0, 0, 0), 0) != nil {
		t.Error("k=0 should return nil")
	}
	if got := tr.KNN(geom.V(0, 0, 0), len(items)+10); len(got) != len(items) {
		t.Errorf("k>n returned %d items", len(got))
	}
	empty := NewDefault()
	if empty.KNN(geom.V(0, 0, 0), 3) != nil {
		t.Error("empty tree KNN should return nil")
	}
}

func TestSearchEarlyTermination(t *testing.T) {
	items := randomItems(500, 10)
	tr := NewDefault()
	tr.BulkLoad(items)
	count := 0
	tr.Search(universe(), func(index.Item) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early termination visited %d items", count)
	}
}

func TestCountersTrackTraversalWork(t *testing.T) {
	d := datagen.GenerateNeurons(datagen.DefaultNeuronConfig(20, 200, 11))
	items := make([]index.Item, d.Len())
	for i := range d.Elements {
		items[i] = index.Item{ID: d.Elements[i].ID, Box: d.Elements[i].Box}
	}
	tr := NewDefault()
	tr.BulkLoad(items)
	tr.Counters().Reset()
	queries := datagen.GenerateRangeQueries(datagen.RangeQueryConfig{
		N: 50, Selectivity: 1e-4, Universe: d.Universe, Seed: 12,
	})
	for _, q := range queries {
		index.SearchIDs(tr, q)
	}
	c := tr.Counters().Snapshot()
	if c.NodeVisits == 0 || c.TreeIntersectTests == 0 || c.ElemIntersectTests == 0 {
		t.Fatalf("counters not populated: %+v", c)
	}
	// An R-Tree query on clustered data must test far fewer elements than a
	// full scan would.
	if c.ElemIntersectTests >= int64(len(items)*len(queries)) {
		t.Fatalf("element tests %d not better than scanning", c.ElemIntersectTests)
	}
}

func TestConfigValidation(t *testing.T) {
	tr := New(Config{MaxEntries: 2}) // too small, falls back to default
	if tr.maxEntries != DefaultMaxEntries {
		t.Errorf("maxEntries = %d", tr.maxEntries)
	}
	tr2 := New(Config{MaxEntries: 8, MinEntries: 100}) // min > max/2, recomputed
	if tr2.minEntries > 4 {
		t.Errorf("minEntries = %d", tr2.minEntries)
	}
	tr3 := New(Config{MaxEntries: 64, MinEntries: 16})
	if tr3.maxEntries != 64 || tr3.minEntries != 16 {
		t.Errorf("explicit config not honored: %d/%d", tr3.maxEntries, tr3.minEntries)
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	items := randomItems(5000, 13)
	tr := New(Config{MaxEntries: 16})
	for _, it := range items {
		tr.Insert(it.ID, it.Box)
	}
	if tr.Height() < 3 || tr.Height() > 8 {
		t.Errorf("unexpected height %d for 5000 items with fan-out 16", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestInsertDeleteRandomizedInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	tr := New(Config{MaxEntries: 8})
	live := make(map[int64]geom.AABB)
	var nextID int64
	for step := 0; step < 3000; step++ {
		if r.Float64() < 0.6 || len(live) == 0 {
			c := geom.V(r.Float64()*100, r.Float64()*100, r.Float64()*100)
			box := geom.AABBFromCenter(c, geom.V(0.5, 0.5, 0.5))
			tr.Insert(nextID, box)
			live[nextID] = box
			nextID++
		} else {
			// Delete a random live element.
			var id int64
			for id = range live {
				break
			}
			if !tr.Delete(id, live[id]) {
				t.Fatalf("step %d: Delete(%d) failed", step, id)
			}
			delete(live, id)
		}
		if tr.Len() != len(live) {
			t.Fatalf("step %d: Len %d != live %d", step, tr.Len(), len(live))
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after random workload: %v", err)
	}
	// Final correctness check.
	got := index.SearchIDs(tr, universe())
	if len(got) != len(live) {
		t.Fatalf("final search %d != live %d", len(got), len(live))
	}
	for _, id := range got {
		if _, ok := live[id]; !ok {
			t.Fatalf("ghost id %d", id)
		}
	}
}

func TestBoundsCoverAllItems(t *testing.T) {
	items := randomItems(800, 15)
	tr := NewDefault()
	tr.BulkLoad(items)
	b := tr.Bounds()
	for _, it := range items {
		if !b.Contains(it.Box) {
			t.Fatalf("tree bounds %v do not contain item %v", b, it.Box)
		}
	}
	empty := NewDefault()
	if !empty.Bounds().IsEmpty() {
		t.Error("empty tree bounds should be empty")
	}
}

func TestItemsFromBoxes(t *testing.T) {
	ids := []int64{1, 2, 3}
	boxes := []geom.AABB{
		geom.PointAABB(geom.V(1, 1, 1)),
		geom.PointAABB(geom.V(2, 2, 2)),
		geom.PointAABB(geom.V(3, 3, 3)),
	}
	items := ItemsFromBoxes(ids, boxes)
	if len(items) != 3 || items[1].ID != 2 || items[2].Box != boxes[2] {
		t.Fatalf("ItemsFromBoxes = %+v", items)
	}
}
