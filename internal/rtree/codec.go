package rtree

// Binary codec for the Compact snapshot. The layout is the slab itself,
// little-endian with fixed-width records — the int32-offset node slab and the
// SoA leaf arrays are already position-independent, so serialization is a
// straight transcription and a decoded snapshot answers queries identically
// to the frozen original (same traversal, same visit order). Fixed 64-byte
// node records and the contiguous SoA regions also give the paged disk read
// path (internal/persist) O(1) offset arithmetic into the same bytes: one
// format, loaded whole into memory or queried page by page.
//
// Layout (all little-endian):
//
//	[0:4)   magic "RTC1"
//	[4:8)   node count
//	[8:12)  leaf entry count
//	[12:16) leafStart (slab index of the first leaf node, int32)
//	[16:20) item count
//	[20:24) height
//	[24:28) KNN heap capacity
//	[28:32) reserved (zero)
//	[32:)   nodes   — node count x 64 B (box 6xf64, first i32, count i32, leaf u8, pad)
//	then    leafBoxes — leaf count x 48 B (6xf64)
//	then    leafIDs   — leaf count x 8 B (i64)

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"spatialsim/internal/geom"
)

const (
	compactMagic = 0x31435452 // "RTC1"

	compactHeaderSize = 32
	// CompactNodeSize is the serialized size of one slab node record.
	CompactNodeSize = 64
	// CompactLeafBoxSize is the serialized size of one leaf box.
	CompactLeafBoxSize = 48
	// CompactLeafIDSize is the serialized size of one leaf id.
	CompactLeafIDSize = 8

	// maxHeapCap bounds the decoded KNN heap capacity: a corrupted header
	// must not translate into an arbitrary-size allocation on first use.
	maxHeapCap = 1 << 16
)

// ErrBadSnapshot is wrapped by every decode failure.
var ErrBadSnapshot = errors.New("rtree: bad compact snapshot")

// BinarySize returns the exact number of bytes AppendBinary will append.
func (c *Compact) BinarySize() int {
	return compactHeaderSize + len(c.nodes)*CompactNodeSize + len(c.leafIDs)*(CompactLeafBoxSize+CompactLeafIDSize)
}

func appendU32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendBox(buf []byte, b geom.AABB) []byte {
	buf = appendF64(buf, b.Min.X)
	buf = appendF64(buf, b.Min.Y)
	buf = appendF64(buf, b.Min.Z)
	buf = appendF64(buf, b.Max.X)
	buf = appendF64(buf, b.Max.Y)
	buf = appendF64(buf, b.Max.Z)
	return buf
}

// AppendBinary appends the serialized snapshot to buf and returns the
// extended slice.
func (c *Compact) AppendBinary(buf []byte) []byte {
	buf = appendU32(buf, compactMagic)
	buf = appendU32(buf, uint32(len(c.nodes)))
	buf = appendU32(buf, uint32(len(c.leafIDs)))
	buf = appendU32(buf, uint32(c.leafStart))
	buf = appendU32(buf, uint32(c.size))
	buf = appendU32(buf, uint32(c.height))
	buf = appendU32(buf, uint32(c.heapCap))
	buf = appendU32(buf, 0)
	for i := range c.nodes {
		n := &c.nodes[i]
		buf = appendBox(buf, n.box)
		buf = appendU32(buf, uint32(n.first))
		buf = appendU32(buf, uint32(n.count))
		leaf := byte(0)
		if n.leaf {
			leaf = 1
		}
		buf = append(buf, leaf, 0, 0, 0, 0, 0, 0, 0)
	}
	for i := range c.leafBoxes {
		buf = appendBox(buf, c.leafBoxes[i])
	}
	for i := range c.leafIDs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c.leafIDs[i]))
	}
	return buf
}

func readF64(data []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(data))
}

func readBox(data []byte) geom.AABB {
	return geom.AABB{
		Min: geom.Vec3{X: readF64(data), Y: readF64(data[8:]), Z: readF64(data[16:])},
		Max: geom.Vec3{X: readF64(data[24:]), Y: readF64(data[32:]), Z: readF64(data[40:])},
	}
}

// CompactHeader is the decoded fixed-size prefix of a serialized snapshot.
// The paged read path decodes it alone and then addresses node and leaf
// records by offset without materializing the snapshot.
type CompactHeader struct {
	NodeCount int
	LeafCount int
	LeafStart int32
	Size      int
	Height    int
	HeapCap   int
}

// NodesOffset returns the byte offset of the node region.
func (h CompactHeader) NodesOffset() int { return compactHeaderSize }

// LeafBoxesOffset returns the byte offset of the leaf box region.
func (h CompactHeader) LeafBoxesOffset() int {
	return compactHeaderSize + h.NodeCount*CompactNodeSize
}

// LeafIDsOffset returns the byte offset of the leaf id region.
func (h CompactHeader) LeafIDsOffset() int {
	return h.LeafBoxesOffset() + h.LeafCount*CompactLeafBoxSize
}

// BinarySize returns the total serialized size implied by the header.
func (h CompactHeader) BinarySize() int {
	return h.LeafIDsOffset() + h.LeafCount*CompactLeafIDSize
}

// DecodeCompactHeader validates and decodes the fixed-size header. Counts are
// checked against avail (the total bytes available for the snapshot) before
// any count-sized allocation, so a corrupted header cannot demand one.
func DecodeCompactHeader(data []byte, avail int) (CompactHeader, error) {
	var h CompactHeader
	if len(data) < compactHeaderSize {
		return h, fmt.Errorf("%w: %d bytes, want >= %d", ErrBadSnapshot, len(data), compactHeaderSize)
	}
	if m := binary.LittleEndian.Uint32(data); m != compactMagic {
		return h, fmt.Errorf("%w: magic %#x", ErrBadSnapshot, m)
	}
	h.NodeCount = int(binary.LittleEndian.Uint32(data[4:]))
	h.LeafCount = int(binary.LittleEndian.Uint32(data[8:]))
	h.LeafStart = int32(binary.LittleEndian.Uint32(data[12:]))
	h.Size = int(binary.LittleEndian.Uint32(data[16:]))
	h.Height = int(binary.LittleEndian.Uint32(data[20:]))
	h.HeapCap = int(binary.LittleEndian.Uint32(data[24:]))
	need := int64(compactHeaderSize) + int64(h.NodeCount)*CompactNodeSize +
		int64(h.LeafCount)*(CompactLeafBoxSize+CompactLeafIDSize)
	if need > int64(avail) {
		return h, fmt.Errorf("%w: declares %d bytes, have %d", ErrBadSnapshot, need, avail)
	}
	if h.Size < 0 || h.Height < 0 {
		return h, fmt.Errorf("%w: negative size/height", ErrBadSnapshot)
	}
	if (h.NodeCount == 0) != (h.Size == 0) {
		return h, fmt.Errorf("%w: %d nodes for %d items", ErrBadSnapshot, h.NodeCount, h.Size)
	}
	if h.NodeCount == 0 && h.LeafCount != 0 {
		return h, fmt.Errorf("%w: %d leaf entries without nodes", ErrBadSnapshot, h.LeafCount)
	}
	if h.NodeCount > 0 && (h.LeafStart < 0 || int(h.LeafStart) > h.NodeCount) {
		return h, fmt.Errorf("%w: leafStart %d of %d nodes", ErrBadSnapshot, h.LeafStart, h.NodeCount)
	}
	if h.HeapCap < 0 || h.HeapCap > maxHeapCap {
		return h, fmt.Errorf("%w: heap capacity %d", ErrBadSnapshot, h.HeapCap)
	}
	return h, nil
}

// DecodeCompactNode decodes one 64-byte node record.
func DecodeCompactNode(rec []byte) (box geom.AABB, first, count int32, leaf bool) {
	box = readBox(rec)
	first = int32(binary.LittleEndian.Uint32(rec[48:]))
	count = int32(binary.LittleEndian.Uint32(rec[52:]))
	leaf = rec[56] != 0
	return box, first, count, leaf
}

// DecodeCompactLeafBox decodes one 48-byte leaf box record.
func DecodeCompactLeafBox(rec []byte) geom.AABB { return readBox(rec) }

// DecodeCompactLeafID decodes one 8-byte leaf id record.
func DecodeCompactLeafID(rec []byte) int64 {
	return int64(binary.LittleEndian.Uint64(rec))
}

// ValidateCompactNode bounds- and orientation-checks one decoded node
// against the header, exported so the paged read path can verify records as
// it fetches them (a corrupted page must fail the query, not the process).
func ValidateCompactNode(h CompactHeader, i int, first, count int32, leaf bool) error {
	return validateNode(h, i, first, count, leaf)
}

// validateNode checks one node's references against the header's bounds so a
// decoded snapshot can be traversed without index checks.
func validateNode(h CompactHeader, i int, first, count int32, leaf bool) error {
	if count < 0 || first < 0 {
		return fmt.Errorf("%w: node %d has negative extent", ErrBadSnapshot, i)
	}
	if leaf {
		if int(first)+int(count) > h.LeafCount {
			return fmt.Errorf("%w: node %d leaf run [%d,%d) of %d entries", ErrBadSnapshot, i, first, first+count, h.LeafCount)
		}
		if i < int(h.LeafStart) {
			return fmt.Errorf("%w: leaf node %d before leafStart %d", ErrBadSnapshot, i, h.LeafStart)
		}
		return nil
	}
	if int(first)+int(count) > h.NodeCount {
		return fmt.Errorf("%w: node %d child run [%d,%d) of %d nodes", ErrBadSnapshot, i, first, first+count, h.NodeCount)
	}
	if first <= int32(i) && count > 0 {
		// Children strictly follow their parent in the breadth-first slab;
		// a back reference would make traversal loop.
		return fmt.Errorf("%w: node %d references backwards to %d", ErrBadSnapshot, i, first)
	}
	if i >= int(h.LeafStart) {
		return fmt.Errorf("%w: inner node %d at/after leafStart %d", ErrBadSnapshot, i, h.LeafStart)
	}
	return nil
}

// DecodeCompact decodes a snapshot serialized by AppendBinary from the front
// of data, returning the snapshot and the number of bytes consumed. The
// decoded structure is fully validated: every node reference is bounds- and
// orientation-checked, so traversing a snapshot decoded from arbitrary bytes
// cannot index out of range or loop.
func DecodeCompact(data []byte) (*Compact, int, error) {
	h, err := DecodeCompactHeader(data, len(data))
	if err != nil {
		return nil, 0, err
	}
	c := &Compact{
		size:      h.Size,
		height:    h.Height,
		leafStart: h.LeafStart,
		heapCap:   h.HeapCap,
	}
	c.initPools()
	if h.NodeCount > 0 {
		c.nodes = make([]compactNode, h.NodeCount)
		off := h.NodesOffset()
		for i := range c.nodes {
			box, first, count, leaf := DecodeCompactNode(data[off+i*CompactNodeSize:])
			if err := validateNode(h, i, first, count, leaf); err != nil {
				return nil, 0, err
			}
			c.nodes[i] = compactNode{box: box, first: first, count: count, leaf: leaf}
		}
	}
	if h.LeafCount > 0 {
		c.leafBoxes = make([]geom.AABB, h.LeafCount)
		off := h.LeafBoxesOffset()
		for i := range c.leafBoxes {
			c.leafBoxes[i] = readBox(data[off+i*CompactLeafBoxSize:])
		}
		c.leafIDs = make([]int64, h.LeafCount)
		off = h.LeafIDsOffset()
		for i := range c.leafIDs {
			c.leafIDs[i] = int64(binary.LittleEndian.Uint64(data[off+i*CompactLeafIDSize:]))
		}
	}
	return c, h.BinarySize(), nil
}
