// Package rtree implements an in-memory R-Tree (Guttman 1984) with quadratic
// node splitting, deletion with tree condensation, bulk loading via Sort-Tile-
// Recursive (STR), best-first k-nearest-neighbor search and full traversal
// instrumentation.
//
// The R-Tree is the disk-era baseline the paper measures in Figures 2 and 3:
// instrumentation separates the MBR intersection tests performed against
// inner nodes ("intersection tests tree") from the tests performed against
// data entries ("intersection tests elements") so the experiment harness can
// regenerate the paper's breakdowns.
package rtree

import (
	"spatialsim/internal/geom"
	"spatialsim/internal/index"
	"spatialsim/internal/instrument"
)

// DefaultMaxEntries is the default node fan-out. The paper's disk R-Tree uses
// 4 KB pages (hundreds of entries per node); in memory far smaller nodes are
// preferable (Section 3.3 of the paper), so the default is modest.
const DefaultMaxEntries = 16

// Config configures a Tree.
type Config struct {
	// MaxEntries is the maximum number of entries per node (fan-out).
	MaxEntries int
	// MinEntries is the minimum number of entries per node (defaults to
	// MaxEntries*2/5, the R*-Tree recommendation).
	MinEntries int
}

type entry struct {
	box   geom.AABB
	child *node // nil for leaf entries
	id    int64 // valid for leaf entries
}

type node struct {
	leaf    bool
	entries []entry
}

func (n *node) bounds() geom.AABB {
	b := geom.EmptyAABB()
	for i := range n.entries {
		b = b.Union(n.entries[i].box)
	}
	return b
}

// Tree is an in-memory R-Tree. It is not safe for concurrent mutation;
// concurrent read-only searches are safe.
type Tree struct {
	root       *node
	size       int
	height     int
	maxEntries int
	minEntries int
	counters   instrument.Counters
}

// New returns an empty R-Tree with the given configuration.
func New(cfg Config) *Tree {
	if cfg.MaxEntries <= 3 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.MinEntries <= 0 || cfg.MinEntries > cfg.MaxEntries/2 {
		cfg.MinEntries = cfg.MaxEntries * 2 / 5
		if cfg.MinEntries < 2 {
			cfg.MinEntries = 2
		}
	}
	return &Tree{
		root:       &node{leaf: true},
		height:     1,
		maxEntries: cfg.MaxEntries,
		minEntries: cfg.MinEntries,
	}
}

// NewDefault returns an empty R-Tree with the default configuration.
func NewDefault() *Tree { return New(Config{}) }

// Name implements index.Index.
func (t *Tree) Name() string { return "rtree" }

// Len implements index.Index.
func (t *Tree) Len() int { return t.size }

// Height returns the height of the tree (1 for a tree whose root is a leaf).
func (t *Tree) Height() int { return t.height }

// Counters implements index.Index.
func (t *Tree) Counters() *instrument.Counters { return &t.counters }

// Bounds returns the bounding box of the whole tree.
func (t *Tree) Bounds() geom.AABB { return t.root.bounds() }

// Insert implements index.Index.
func (t *Tree) Insert(id int64, box geom.AABB) {
	t.counters.AddUpdates(1)
	t.insertAtLevel(entry{box: box, id: id}, 1)
	t.size++
}

// insertAtLevel inserts e so that it ends up at the given level (1 = leaf
// level, t.height = root level). Subtree re-insertions during deletion pass
// higher levels.
func (t *Tree) insertAtLevel(e entry, level int) {
	split := t.insertRec(t.root, e, t.height, level)
	if split != nil {
		newRoot := &node{leaf: false}
		newRoot.entries = append(newRoot.entries,
			entry{box: t.root.bounds(), child: t.root},
			entry{box: split.bounds(), child: split},
		)
		t.root = newRoot
		t.height++
	}
}

// insertRec inserts e into the subtree rooted at n (which is at nodeLevel).
// It returns a new sibling node if n was split, and nil otherwise. The caller
// is responsible for refreshing its entry box for n.
func (t *Tree) insertRec(n *node, e entry, nodeLevel, targetLevel int) *node {
	if nodeLevel == targetLevel {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxEntries {
			return t.splitNode(n)
		}
		return nil
	}
	// Choose the child needing the least enlargement (ties: smallest volume).
	best := -1
	var bestEnl, bestVol float64
	for i := range n.entries {
		enl := n.entries[i].box.Enlargement(e.box)
		vol := n.entries[i].box.Volume()
		if best == -1 || enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = i, enl, vol
		}
	}
	child := n.entries[best].child
	split := t.insertRec(child, e, nodeLevel-1, targetLevel)
	if split == nil {
		// Hot path: the child gained e (possibly deep below), so its cached
		// MBR only ever grows by e's box. Extending the cached box avoids the
		// full child-entry rescan bounds() would perform on every insert.
		n.entries[best].box = n.entries[best].box.Union(e.box)
		return nil
	}
	// The child was split: its entry set changed arbitrarily, so both halves
	// need a fresh bound (rare — amortized over maxEntries inserts).
	n.entries[best].box = child.bounds()
	n.entries = append(n.entries, entry{box: split.bounds(), child: split})
	if len(n.entries) > t.maxEntries {
		return t.splitNode(n)
	}
	return nil
}

// splitNode splits an overflowing node in place using Guttman's quadratic
// split and returns the newly created sibling.
func (t *Tree) splitNode(n *node) *node {
	entries := n.entries
	// PickSeeds: the pair wasting the most volume if grouped together.
	seedA, seedB := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			u := entries[i].box.Union(entries[j].box)
			waste := u.Volume() - entries[i].box.Volume() - entries[j].box.Volume()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	groupA := make([]entry, 0, len(entries)/2+1)
	groupB := make([]entry, 0, len(entries)/2+1)
	groupA = append(groupA, entries[seedA])
	groupB = append(groupB, entries[seedB])
	boxA := entries[seedA].box
	boxB := entries[seedB].box
	remaining := make([]entry, 0, len(entries)-2)
	for i := range entries {
		if i != seedA && i != seedB {
			remaining = append(remaining, entries[i])
		}
	}
	for len(remaining) > 0 {
		// If one group needs every remaining entry to reach minEntries,
		// assign them all.
		if len(groupA)+len(remaining) <= t.minEntries {
			for i := range remaining {
				boxA = boxA.Union(remaining[i].box)
			}
			groupA = append(groupA, remaining...)
			break
		}
		if len(groupB)+len(remaining) <= t.minEntries {
			for i := range remaining {
				boxB = boxB.Union(remaining[i].box)
			}
			groupB = append(groupB, remaining...)
			break
		}
		// PickNext: entry with the largest preference difference.
		bestIdx, bestDiff := 0, -1.0
		for i := range remaining {
			dA := boxA.Enlargement(remaining[i].box)
			dB := boxB.Enlargement(remaining[i].box)
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx = diff, i
			}
		}
		e := remaining[bestIdx]
		remaining[bestIdx] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		dA := boxA.Enlargement(e.box)
		dB := boxB.Enlargement(e.box)
		if dA < dB || (dA == dB && len(groupA) <= len(groupB)) {
			groupA = append(groupA, e)
			boxA = boxA.Union(e.box)
		} else {
			groupB = append(groupB, e)
			boxB = boxB.Union(e.box)
		}
	}
	n.entries = groupA
	return &node{leaf: n.leaf, entries: groupB}
}

// Delete implements index.Index. It removes the entry with the given id whose
// stored box intersects box, condensing the tree afterwards.
func (t *Tree) Delete(id int64, box geom.AABB) bool {
	t.counters.AddUpdates(1)
	var path []*node
	leaf, idx, path := t.findLeaf(t.root, id, box, path)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(leaf, path)
	// Shrink the root while it is a non-leaf with a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.height--
	}
	return true
}

// findLeaf locates the leaf holding (id, box). path receives the ancestors of
// the returned leaf, root first (the leaf itself is not included).
func (t *Tree) findLeaf(n *node, id int64, box geom.AABB, path []*node) (*node, int, []*node) {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].id == id && n.entries[i].box.Intersects(box) {
				return n, i, path
			}
		}
		return nil, 0, nil
	}
	for i := range n.entries {
		if n.entries[i].box.Intersects(box) {
			if leaf, idx, p := t.findLeaf(n.entries[i].child, id, box, append(path, n)); leaf != nil {
				return leaf, idx, p
			}
		}
	}
	return nil, 0, nil
}

// condense removes underfull nodes along the root-to-leaf path and re-inserts
// their entries (Guttman's CondenseTree).
func (t *Tree) condense(n *node, path []*node) {
	type orphan struct {
		e     entry
		level int
	}
	var orphans []orphan
	level := 1 // level of n's entries' destination (leaf entries live at level 1)
	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i]
		if len(n.entries) < t.minEntries && t.size > 0 {
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries = append(parent.entries[:j], parent.entries[j+1:]...)
					break
				}
			}
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e: e, level: level})
			}
		} else {
			refreshChildBox(parent, n)
		}
		n = parent
		level++
	}
	for _, o := range orphans {
		if o.e.child == nil {
			// Leaf (data) entry: re-insert at the leaf level without touching
			// the size counter (the element never logically left the tree).
			t.insertAtLevel(o.e, 1)
		} else {
			t.insertAtLevel(o.e, o.level)
		}
	}
}

func refreshChildBox(parent, child *node) {
	for j := range parent.entries {
		if parent.entries[j].child == child {
			parent.entries[j].box = child.bounds()
			return
		}
	}
}

// Update implements index.Index: delete followed by insert. The paper's
// Section 4.1 measures exactly this operation under massive minimal movement.
func (t *Tree) Update(id int64, oldBox, newBox geom.AABB) {
	t.Delete(id, oldBox)
	t.Insert(id, newBox)
}

// Search implements index.Index. Every MBR test against an inner-node entry
// is charged to the tree-test counter and every test against a leaf (data)
// entry to the element-test counter, matching the paper's Figure 3 cost
// categories.
func (t *Tree) Search(query geom.AABB, fn func(index.Item) bool) {
	t.searchRec(t.root, query, fn)
}

// RangeVisit implements index.RangeVisitor: the mutable tree's recursive
// Search already performs no per-query allocation, so it satisfies the
// zero-allocation visitor contract directly (a frozen Compact is still
// faster — it avoids the pointer chase per node).
func (t *Tree) RangeVisit(query geom.AABB, visit func(index.Item) bool) {
	t.searchRec(t.root, query, visit)
}

func (t *Tree) searchRec(n *node, query geom.AABB, fn func(index.Item) bool) bool {
	t.counters.AddNodeVisits(1)
	if n.leaf {
		t.counters.AddElemIntersectTests(int64(len(n.entries)))
		t.counters.AddElementsTouched(int64(len(n.entries)))
		for i := range n.entries {
			if query.Intersects(n.entries[i].box) {
				t.counters.AddResults(1)
				if !fn(index.Item{ID: n.entries[i].id, Box: n.entries[i].box}) {
					return false
				}
			}
		}
		return true
	}
	t.counters.AddTreeIntersectTests(int64(len(n.entries)))
	for i := range n.entries {
		if query.Intersects(n.entries[i].box) {
			if !t.searchRec(n.entries[i].child, query, fn) {
				return false
			}
		}
	}
	return true
}

// checkInvariants walks the whole tree verifying structural invariants. It is
// exported to the package tests via export_test.go.
func (t *Tree) checkInvariants() error {
	return t.checkNode(t.root, t.height, true)
}

func (t *Tree) checkNode(n *node, level int, isRoot bool) error {
	if !isRoot {
		if len(n.entries) < t.minEntries || len(n.entries) > t.maxEntries {
			return errEntryCount(len(n.entries), t.minEntries, t.maxEntries)
		}
	} else if len(n.entries) > t.maxEntries {
		return errEntryCount(len(n.entries), 0, t.maxEntries)
	}
	if n.leaf {
		if level != 1 {
			return errLeafLevel(level)
		}
		return nil
	}
	for i := range n.entries {
		child := n.entries[i].child
		if child == nil {
			return errNilChild()
		}
		cb := child.bounds()
		if !n.entries[i].box.Expand(1e-9).Contains(cb) {
			return errBoxMismatch()
		}
		if err := t.checkNode(child, level-1, false); err != nil {
			return err
		}
	}
	return nil
}

type treeError string

func (e treeError) Error() string { return string(e) }

func errEntryCount(n, lo, hi int) error {
	return treeError("node entry count out of bounds")
}
func errLeafLevel(l int) error { return treeError("leaf at wrong level") }
func errNilChild() error       { return treeError("inner node with nil child") }
func errBoxMismatch() error    { return treeError("entry box does not cover child bounds") }

var _ index.Index = (*Tree)(nil)
var _ index.BulkLoader = (*Tree)(nil)
