package rtree

// Zero-copy overlay decoding: the serialized Compact layout (codec.go) is,
// byte for byte, the in-memory layout of the node slab and SoA leaf arrays
// on a little-endian machine — 64-byte node records matching compactNode's
// padded struct layout, then []geom.AABB, then []int64. OverlayCompact
// exploits that: instead of DecodeCompact's element-by-element copy onto the
// heap, it points the slab slices directly into the caller's buffer
// (typically an mmap'd segment). Decoding becomes O(validate) with zero
// copies and zero allocations proportional to tree size, and the OS pages
// holding leaf data are not even faulted in until a query touches them —
// which is what makes O(open) recovery and larger-than-RAM serving work.
//
// Safety is layered, never assumed:
//
//   - the struct layout and byte order the overlay relies on are verified by
//     compile-time constants and a one-time runtime probe; on any mismatch
//     (big-endian targets, a future field reorder) OverlayCompact returns
//     ErrOverlayUnsupported and callers fall back to DecodeCompact;
//   - the buffer must be 8-byte aligned (mmap regions are page-aligned;
//     checkptr under -race enforces this too);
//   - every node record is bounds-, orientation- and bool-validated from the
//     raw bytes before any unsafe view is built, so traversing an overlay of
//     arbitrary bytes cannot index out of range, loop, or materialize an
//     invalid Go bool.

import (
	"errors"
	"fmt"
	"math/bits"
	"unsafe"

	"spatialsim/internal/geom"
	"spatialsim/internal/index"
)

// ErrOverlayUnsupported reports that this platform or buffer cannot host a
// zero-copy overlay (wrong endianness, incompatible struct layout, or a
// misaligned buffer). It is a fallback signal, not corruption: DecodeCompact
// of the same bytes will work.
var ErrOverlayUnsupported = errors.New("rtree: zero-copy overlay unsupported here")

// overlayLayoutOK proves at compile time that compactNode's padded in-memory
// layout is the serialized 64-byte record and geom.AABB is the serialized
// 48-byte box (6 contiguous float64s). If a refactor breaks this, the
// constant flips and overlays cleanly refuse instead of misreading.
const overlayLayoutOK = unsafe.Sizeof(compactNode{}) == CompactNodeSize &&
	unsafe.Offsetof(compactNode{}.box) == 0 &&
	unsafe.Offsetof(compactNode{}.first) == 48 &&
	unsafe.Offsetof(compactNode{}.count) == 52 &&
	unsafe.Offsetof(compactNode{}.leaf) == 56 &&
	unsafe.Sizeof(geom.AABB{}) == CompactLeafBoxSize &&
	unsafe.Sizeof(geom.Vec3{}) == 24

// overlayLittleEndian probes the target's byte order once: the wire format
// is little-endian, so only little-endian targets can overlay it.
var overlayLittleEndian = func() bool {
	probe := uint32(0x01020304)
	return *(*byte)(unsafe.Pointer(&probe)) == 0x04
}()

// OverlaySupported reports whether this build can serve zero-copy overlays
// at all (layout + endianness; per-buffer alignment is still checked by each
// OverlayCompact call).
func OverlaySupported() bool { return overlayLayoutOK && overlayLittleEndian }

// OverlayCompact decodes a snapshot serialized by AppendBinary from the
// front of data without copying it: the returned Compact's node slab and SoA
// leaf arrays alias data directly. data must stay immutable and outlive the
// snapshot (an mmap'd segment held by the epoch). Validation matches
// DecodeCompact exactly — every node reference is bounds- and
// orientation-checked, and leaf flag bytes must be strictly 0 or 1 so the
// overlaid Go bools are well-formed. Returns ErrOverlayUnsupported when the
// platform or the buffer's alignment rules out an overlay (fall back to
// DecodeCompact), or ErrBadSnapshot when the bytes are corrupt.
func OverlayCompact(data []byte) (*Compact, int, error) {
	if !OverlaySupported() {
		return nil, 0, ErrOverlayUnsupported
	}
	h, err := DecodeCompactHeader(data, len(data))
	if err != nil {
		return nil, 0, err
	}
	c := &Compact{
		size:      h.Size,
		height:    h.Height,
		leafStart: h.LeafStart,
		heapCap:   h.HeapCap,
	}
	c.initPools()
	if h.NodeCount == 0 {
		return c, h.BinarySize(), nil
	}
	if uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		return nil, 0, fmt.Errorf("%w: buffer not 8-byte aligned", ErrOverlayUnsupported)
	}
	// Validate every node from the raw bytes before building any view. This
	// touches only the node region (the index skeleton, a few percent of the
	// snapshot); leaf pages stay untouched until queries fault them in.
	off := h.NodesOffset()
	for i := 0; i < h.NodeCount; i++ {
		rec := data[off+i*CompactNodeSize:]
		if rec[56] > 1 {
			return nil, 0, fmt.Errorf("%w: node %d leaf flag %d", ErrBadSnapshot, i, rec[56])
		}
		_, first, count, leaf := DecodeCompactNode(rec)
		if err := validateNode(h, i, first, count, leaf); err != nil {
			return nil, 0, err
		}
	}
	c.nodes = unsafe.Slice((*compactNode)(unsafe.Pointer(&data[off])), h.NodeCount)
	if h.LeafCount > 0 {
		c.leafBoxes = unsafe.Slice((*geom.AABB)(unsafe.Pointer(&data[h.LeafBoxesOffset()])), h.LeafCount)
		c.leafIDs = unsafe.Slice((*int64)(unsafe.Pointer(&data[h.LeafIDsOffset()])), h.LeafCount)
	}
	return c, h.BinarySize(), nil
}

// b2u is the branch-free bool-to-bit conversion: the compiler lowers it to a
// SETcc, not a jump, which is what keeps the batch predicate kernel free of
// per-entry branch mispredictions.
func b2u(b bool) uint64 {
	var x uint64
	if b {
		x = 1
	}
	return x
}

// RangeVisitBatch is RangeVisit with batch, branch-free MBR predicate
// evaluation over the SoA leaf runs: instead of testing each leaf box behind
// a (mispredicting) intersection branch, the kernel evaluates the six
// comparisons of every box in a 64-entry chunk into a bitmask with no
// control dependency on the outcome, then walks the set bits. On the mapped
// read path each leaf run lives on a handful of OS pages, so the chunked
// sweep also touches pages sequentially — predicate evaluation per page,
// not per entry. Results and visit order are identical to RangeVisit (the
// conformance suite pins this); only the accounting granularity differs —
// the sorted-run early break applies per 64-entry chunk instead of per
// entry, so elemTests may count a partially-useful chunk in full.
func (c *Compact) RangeVisitBatch(query geom.AABB, visit func(index.Item) bool) {
	if c.size == 0 {
		return
	}
	var nodeVisits, treeTests, elemTests, results int64
	defer func() {
		c.counters.AddNodeVisits(nodeVisits)
		c.counters.AddTreeIntersectTests(treeTests)
		c.counters.AddElemIntersectTests(elemTests)
		c.counters.AddElementsTouched(elemTests)
		c.counters.AddResults(results)
	}()
	treeTests++
	if !query.Intersects(c.nodes[0].box) {
		return
	}
	var stackArr [compactStackCap]int32
	stack := stackArr[:0]
	stack = append(stack, 0)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &c.nodes[ni]
		nodeVisits++
		if n.leaf { // only the root can reach the stack as a leaf
			tested, hit, more := c.scanLeafRunBatch(query, n.first, n.count, visit)
			elemTests += tested
			results += hit
			if !more {
				return
			}
			continue
		}
		treeTests += int64(n.count)
		children := c.nodes[n.first : n.first+n.count]
		for i := range children {
			if !query.Intersects(children[i].box) {
				continue
			}
			ci := n.first + int32(i)
			if ci < c.leafStart {
				stack = append(stack, ci)
				continue
			}
			// Leaf child: batch-scan its SoA run inline.
			ch := &children[i]
			nodeVisits++
			tested, hit, more := c.scanLeafRunBatch(query, ch.first, ch.count, visit)
			elemTests += tested
			results += hit
			if !more {
				return
			}
		}
	}
}

// scanLeafRunBatch evaluates one leaf's SoA run [first, first+count) against
// the query branch-free: 64 boxes at a time are reduced to a hit bitmask (6
// SETcc-and-AND comparisons per box, no data-dependent branch), then only
// the set bits are visited. Leaf runs are sorted by Min.X, so a chunk whose
// first box already starts beyond query.Max.X ends the run — the sorted
// early-break at chunk granularity. Returns how many boxes were tested, how
// many hit, and whether the visitor wants more.
func (c *Compact) scanLeafRunBatch(query geom.AABB, first, count int32, visit func(index.Item) bool) (tested, hit int64, more bool) {
	boxes := c.leafBoxes[first : first+count]
	ids := c.leafIDs[first : first+count]
	for base := 0; base < len(boxes); base += 64 {
		if boxes[base].Min.X > query.Max.X {
			break // sorted by Min.X: nothing further can intersect
		}
		end := base + 64
		if end > len(boxes) {
			end = len(boxes)
		}
		chunk := boxes[base:end]
		var mask uint64
		for i := range chunk {
			b := &chunk[i]
			m := b2u(b.Min.X <= query.Max.X) & b2u(b.Max.X >= query.Min.X) &
				b2u(b.Min.Y <= query.Max.Y) & b2u(b.Max.Y >= query.Min.Y) &
				b2u(b.Min.Z <= query.Max.Z) & b2u(b.Max.Z >= query.Min.Z)
			mask |= m << uint(i)
		}
		tested += int64(len(chunk))
		for mask != 0 {
			i := bits.TrailingZeros64(mask)
			mask &= mask - 1
			hit++
			if !visit(index.Item{ID: ids[base+i], Box: chunk[i]}) {
				return tested, hit, false
			}
		}
	}
	return tested, hit, true
}
