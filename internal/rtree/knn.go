package rtree

import (
	"container/heap"

	"spatialsim/internal/geom"
	"spatialsim/internal/index"
)

// KNN implements index.Index using the classic best-first (Hjaltason/Samet)
// traversal: a priority queue ordered by minimum distance holds both nodes
// and data entries; data entries popped from the queue are guaranteed to be
// the next nearest.
func (t *Tree) KNN(p geom.Vec3, k int) []index.Item {
	if k <= 0 || t.size == 0 {
		return nil
	}
	pq := &knnQueue{}
	heap.Init(pq)
	heap.Push(pq, knnEntry{node: t.root, dist: t.root.bounds().Distance2ToPoint(p)})
	out := make([]index.Item, 0, k)
	for pq.Len() > 0 && len(out) < k {
		e := heap.Pop(pq).(knnEntry)
		if e.node == nil {
			out = append(out, e.item)
			continue
		}
		t.counters.AddNodeVisits(1)
		n := e.node
		if n.leaf {
			t.counters.AddElemIntersectTests(int64(len(n.entries)))
			for i := range n.entries {
				heap.Push(pq, knnEntry{
					item: index.Item{ID: n.entries[i].id, Box: n.entries[i].box},
					dist: n.entries[i].box.Distance2ToPoint(p),
				})
			}
		} else {
			t.counters.AddTreeIntersectTests(int64(len(n.entries)))
			for i := range n.entries {
				heap.Push(pq, knnEntry{
					node: n.entries[i].child,
					dist: n.entries[i].box.Distance2ToPoint(p),
				})
			}
		}
	}
	return out
}

type knnEntry struct {
	node *node // nil for data entries
	item index.Item
	dist float64
}

type knnQueue []knnEntry

func (q knnQueue) Len() int            { return len(q) }
func (q knnQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q knnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x interface{}) { *q = append(*q, x.(knnEntry)) }
func (q *knnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
