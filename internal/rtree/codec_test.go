package rtree

import (
	"bytes"
	"testing"

	"spatialsim/internal/geom"
	"spatialsim/internal/index"
)

func TestCompactCodecRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 5, 400, 3000} {
		items := randomItems(n, int64(n)+7)
		c := FreezeItems(items, Config{})
		blob := c.AppendBinary(nil)
		if got, want := len(blob), c.BinarySize(); got != want {
			t.Fatalf("n=%d: BinarySize %d, appended %d", n, want, got)
		}
		// Decoding must consume exactly the blob and survive trailing bytes.
		dec, consumed, err := DecodeCompact(append(blob, 0xAA, 0xBB))
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if consumed != len(blob) {
			t.Fatalf("n=%d: consumed %d of %d", n, consumed, len(blob))
		}
		if dec.Len() != c.Len() || dec.Height() != c.Height() {
			t.Fatalf("n=%d: len/height %d/%d, want %d/%d", n, dec.Len(), dec.Height(), c.Len(), c.Height())
		}
		// Re-encoding the decoded snapshot must be byte-identical: the codec
		// is a transcription, not a rebuild.
		if !bytes.Equal(blob, dec.AppendBinary(nil)) {
			t.Fatalf("n=%d: re-encode differs", n)
		}
		// Queries must agree in results and visit order.
		queries := []geom.AABB{
			geom.NewAABB(geom.V(10, 10, 10), geom.V(40, 40, 40)),
			geom.NewAABB(geom.V(0, 0, 0), geom.V(100, 100, 100)),
			geom.NewAABB(geom.V(90, 90, 90), geom.V(91, 91, 91)),
		}
		for _, q := range queries {
			a := index.VisitAll(c, q)
			b := index.VisitAll(dec, q)
			if len(a) != len(b) {
				t.Fatalf("n=%d: range results %d vs %d", n, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d: range result %d: %v vs %v", n, i, a[i], b[i])
				}
			}
		}
		for _, p := range []geom.Vec3{geom.V(50, 50, 50), geom.V(-5, 0, 200)} {
			a := c.KNN(p, 10)
			b := dec.KNN(p, 10)
			if len(a) != len(b) {
				t.Fatalf("n=%d: knn results %d vs %d", n, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d: knn result %d: %v vs %v", n, i, a[i], b[i])
				}
			}
		}
	}
}

func TestDecodeCompactRejectsCorruption(t *testing.T) {
	c := FreezeItems(randomItems(200, 3), Config{})
	blob := c.AppendBinary(nil)

	cases := map[string]func([]byte) []byte{
		"empty":           func(b []byte) []byte { return nil },
		"short header":    func(b []byte) []byte { return b[:16] },
		"bad magic":       func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"truncated body":  func(b []byte) []byte { return b[:len(b)/2] },
		"huge node count": func(b []byte) []byte { b[4], b[5], b[6], b[7] = 0xFF, 0xFF, 0xFF, 0x7F; return b },
		"leaf run overflow": func(b []byte) []byte {
			// First leaf node's count field.
			off := 32 + int(c.leafStart)*CompactNodeSize + 52
			b[off], b[off+1], b[off+2], b[off+3] = 0xFF, 0xFF, 0xFF, 0x7F
			return b
		},
	}
	for name, corrupt := range cases {
		mutated := corrupt(append([]byte(nil), blob...))
		if _, _, err := DecodeCompact(mutated); err == nil {
			t.Errorf("%s: decode accepted corrupted snapshot", name)
		}
	}
}
