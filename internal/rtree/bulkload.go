package rtree

import (
	"math"
	"sort"

	"spatialsim/internal/geom"
	"spatialsim/internal/index"
)

// BulkLoad replaces the tree contents with the given items using the
// Sort-Tile-Recursive (STR) algorithm. The paper's Section 4.1 observes that
// for massively changing datasets rebuilding (bulk loading) the index is often
// cheaper than updating it in place; this is the rebuild path.
func (t *Tree) BulkLoad(items []index.Item) {
	t.root = &node{leaf: true}
	t.height = 1
	t.size = len(items)
	if len(items) == 0 {
		return
	}
	leafEntries := make([]entry, len(items))
	for i, it := range items {
		leafEntries[i] = entry{box: it.Box, id: it.ID}
	}
	nodes := t.strPack(leafEntries, true)
	height := 1
	for len(nodes) > 1 {
		parentEntries := make([]entry, len(nodes))
		for i, n := range nodes {
			parentEntries[i] = entry{box: n.bounds(), child: n}
		}
		nodes = t.strPack(parentEntries, false)
		height++
	}
	t.root = nodes[0]
	t.height = height
}

// strPack groups entries into nodes of at most maxEntries using Sort-Tile-
// Recursive tiling: sort by X center, cut into vertical slabs, sort each slab
// by Y center, cut into runs, sort each run by Z center and cut into nodes.
// Slab and run sizes are multiples of the node capacity so only the very last
// node can come out underfull; that node is rebalanced with its predecessor
// to respect the minimum-occupancy invariant.
func (t *Tree) strPack(entries []entry, leaf bool) []*node {
	m := t.maxEntries
	n := len(entries)
	if n <= m {
		return []*node{{leaf: leaf, entries: append([]entry(nil), entries...)}}
	}
	slabSize, runSize := t.strTiling(n)

	sortByCenter(entries, 0)
	var nodes []*node
	for i := 0; i < n; i += slabSize {
		slab := entries[i:minInt(i+slabSize, n)]
		nodes = append(nodes, packTiles(slab, leaf, runSize, m)...)
	}
	t.rebalanceLastNode(nodes)
	return nodes
}

// strTiling returns the STR slab and run sizes for n entries: slabs of
// s*s*m entries cut by X, runs of s*m entries cut by Y, nodes of m entries
// cut by Z, with s the cube root of the page count.
func (t *Tree) strTiling(n int) (slabSize, runSize int) {
	m := t.maxEntries
	pages := (n + m - 1) / m
	s := int(math.Ceil(math.Cbrt(float64(pages))))
	if s < 1 {
		s = 1
	}
	return s * s * m, s * m
}

// packTiles packs one X-slab into nodes: sort the slab by Y center, cut it
// into runs, sort each run by Z center and emit nodes of at most m entries.
// It touches only the given slab, so distinct slabs can be packed by
// concurrent goroutines.
func packTiles(slab []entry, leaf bool, runSize, m int) []*node {
	var nodes []*node
	sortByCenter(slab, 1)
	for j := 0; j < len(slab); j += runSize {
		run := slab[j:minInt(j+runSize, len(slab))]
		sortByCenter(run, 2)
		for k := 0; k < len(run); k += m {
			chunk := run[k:minInt(k+m, len(run))]
			nodes = append(nodes, &node{leaf: leaf, entries: append([]entry(nil), chunk...)})
		}
	}
	return nodes
}

// rebalanceLastNode fixes the one node a full STR pass can leave underfull:
// only the globally last node can come out below the minimum occupancy, and
// it is rebalanced with its predecessor.
func (t *Tree) rebalanceLastNode(nodes []*node) {
	if len(nodes) > 1 {
		last := nodes[len(nodes)-1]
		if len(last.entries) < t.minEntries {
			prev := nodes[len(nodes)-2]
			merged := append(prev.entries, last.entries...)
			half := (len(merged) + 1) / 2
			prev.entries = merged[:half]
			last.entries = append([]entry(nil), merged[half:]...)
		}
	}
}

func sortByCenter(entries []entry, axis int) {
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].box.Center().Axis(axis) < entries[j].box.Center().Axis(axis)
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ItemsFromBoxes is a convenience helper building bulk-load input from
// parallel id/box slices.
func ItemsFromBoxes(ids []int64, boxes []geom.AABB) []index.Item {
	items := make([]index.Item, len(ids))
	for i := range ids {
		items[i] = index.Item{ID: ids[i], Box: boxes[i]}
	}
	return items
}
