package rtree

// CheckInvariants exposes the internal structural checker to tests.
func (t *Tree) CheckInvariants() error { return t.checkInvariants() }
