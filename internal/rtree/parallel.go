package rtree

import (
	"sync"

	"spatialsim/internal/exec"
	"spatialsim/internal/index"
)

// parallelLoadMinItems is the size below which the sequential STR path is
// used: goroutine fan-out costs more than it saves on small inputs.
const parallelLoadMinItems = 1 << 13

// ParallelBulkLoad implements index.ParallelBulkLoader. It is the STR bulk
// load of BulkLoad decomposed for a worker pool:
//
//  1. entries are sorted by X center with a parallel merge sort (chunk sorts
//     followed by pairwise merge rounds);
//  2. the X-sorted sequence is cut into the same sort-tile slabs the
//     sequential pass would use, and the slabs — each an independent
//     sort-by-Y / tile-by-Z / pack job — are packed into leaf nodes by
//     concurrent workers;
//  3. the per-slab leaf runs are stitched in slab order (they are disjoint
//     X-ranges, so concatenation preserves the STR ordering), the one
//     possibly-underfull trailing node is rebalanced, and the upper levels —
//     a maxEntries-th of the data per level — are packed sequentially.
//
// The resulting tree answers every query exactly like its sequential
// counterpart; only node grouping may differ.
func (t *Tree) ParallelBulkLoad(items []index.Item, workers int) {
	if workers <= 1 || len(items) < parallelLoadMinItems {
		t.BulkLoad(items)
		return
	}
	entries := make([]entry, len(items))
	exec.ForChunks(len(items), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			entries[i] = entry{box: items[i].Box, id: items[i].ID}
		}
	})
	parallelSortByCenter(entries, 0, workers)

	m := t.maxEntries
	slabSize, runSize := t.strTiling(len(entries))
	numSlabs := (len(entries) + slabSize - 1) / slabSize
	perSlab := make([][]*node, numSlabs)
	exec.ForTasks(numSlabs, workers, func(_, si int) {
		lo := si * slabSize
		hi := minInt(lo+slabSize, len(entries))
		perSlab[si] = packTiles(entries[lo:hi], true, runSize, m)
	})

	var nodes []*node
	for _, slabNodes := range perSlab {
		nodes = append(nodes, slabNodes...)
	}
	t.rebalanceLastNode(nodes)

	height := 1
	for len(nodes) > 1 {
		parentEntries := make([]entry, len(nodes))
		for i, n := range nodes {
			parentEntries[i] = entry{box: n.bounds(), child: n}
		}
		nodes = t.strPack(parentEntries, false)
		height++
	}
	t.root = nodes[0]
	t.height = height
	t.size = len(items)
}

// parallelSortByCenter sorts entries by box center along the given axis using
// a chunked parallel merge sort: each worker sorts one contiguous chunk, then
// adjacent sorted runs are merged pairwise (each merge on its own goroutine)
// until one run remains.
func parallelSortByCenter(entries []entry, axis, workers int) {
	n := len(entries)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sortByCenter(entries, axis)
		return
	}
	bounds := make([]int, 0, workers+1)
	for w := 0; w <= workers; w++ {
		bounds = append(bounds, w*n/workers)
	}
	exec.ForTasks(workers, workers, func(_, w int) {
		sortByCenter(entries[bounds[w]:bounds[w+1]], axis)
	})

	src, dst := entries, make([]entry, n)
	for len(bounds) > 2 {
		nextBounds := make([]int, 0, len(bounds)/2+1)
		var wg sync.WaitGroup
		for i := 0; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i], bounds[i+1], bounds[i+2]
			nextBounds = append(nextBounds, lo)
			wg.Add(1)
			go func(lo, mid, hi int) {
				defer wg.Done()
				mergeByCenter(dst[lo:hi], src[lo:mid], src[mid:hi], axis)
			}(lo, mid, hi)
		}
		if len(bounds)%2 == 0 {
			// Odd run count: the trailing run has no partner this round.
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			nextBounds = append(nextBounds, lo)
			copy(dst[lo:hi], src[lo:hi])
		}
		nextBounds = append(nextBounds, n)
		wg.Wait()
		src, dst = dst, src
		bounds = nextBounds
	}
	if &src[0] != &entries[0] {
		copy(entries, src)
	}
}

// mergeByCenter merges two runs sorted by box center on the given axis.
func mergeByCenter(dst, a, b []entry, axis int) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i].box.Center().Axis(axis) <= b[j].box.Center().Axis(axis) {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

var _ index.ParallelBulkLoader = (*Tree)(nil)
