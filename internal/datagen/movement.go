package datagen

import (
	"math/rand"

	"spatialsim/internal/geom"
	"spatialsim/internal/stats"
)

// MovementModel perturbs a dataset in place, one simulation step at a time,
// and reports displacement statistics for the step. Implementations model the
// paper's workloads: neural plasticity (all elements move, minimally), drift
// (bulk motion), and partial updates (only a fraction of elements move).
type MovementModel interface {
	// Step applies one simulation step of movement to d and returns per-step
	// displacement statistics.
	Step(d *Dataset) MovementStats
}

// MovementStats summarizes the displacements applied during one step.
type MovementStats struct {
	Moved            int     // number of elements whose position changed
	MeanDisplacement float64 // average displacement of moved elements
	MaxDisplacement  float64
	// FractionAboveThreshold is the fraction of all elements whose
	// displacement exceeded the model's reporting threshold (the paper
	// reports <0.5% of elements moving more than 0.1 µm).
	FractionAboveThreshold float64
	Threshold              float64
}

// PlasticityModel reproduces the movement statistics of the paper's neural
// plasticity simulation (Section 4.1): in every step *all* elements move, the
// mean displacement is MeanStep (0.04 µm in the paper), and fewer than ~0.5%
// of elements move more than Threshold (0.1 µm). Displacement magnitudes are
// drawn from a Gamma(6, MeanStep/6) distribution (mean MeanStep), whose tail
// gives P(X > 2.5·mean) ≈ 0.3%, matching the paper's "<0.5% move more than
// 0.1 µm"; the direction is uniform on the sphere.
type PlasticityModel struct {
	MeanStep  float64
	Threshold float64
	// Fraction is the fraction of elements moved each step; 1.0 reproduces
	// the paper's "all elements move". Values below 1 are used by the
	// update-vs-rebuild crossover sweep.
	Fraction float64
	rng      *rand.Rand
}

// NewPlasticityModel returns a plasticity movement model with the paper's
// parameters (mean 0.04 µm, threshold 0.1 µm, all elements move).
func NewPlasticityModel(seed int64) *PlasticityModel {
	return &PlasticityModel{MeanStep: 0.04, Threshold: 0.1, Fraction: 1.0, rng: rand.New(rand.NewSource(seed))}
}

// NewPartialPlasticityModel returns a plasticity model that moves only the
// given fraction of elements each step.
func NewPartialPlasticityModel(seed int64, fraction float64) *PlasticityModel {
	m := NewPlasticityModel(seed)
	m.Fraction = fraction
	return m
}

// Step implements MovementModel.
func (m *PlasticityModel) Step(d *Dataset) MovementStats {
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(1))
	}
	disp := make([]float64, 0, d.Len())
	moved := 0
	for i := range d.Elements {
		if m.Fraction < 1 && m.rng.Float64() >= m.Fraction {
			continue
		}
		mag := gammaDisplacement(m.rng, m.MeanStep)
		dir := randomUnit(m.rng)
		delta := dir.Scale(mag)
		e := &d.Elements[i]
		e.Translate(delta)
		clampElement(e, d.Universe)
		disp = append(disp, mag)
		moved++
	}
	return MovementStats{
		Moved:                  moved,
		MeanDisplacement:       stats.Mean(disp),
		MaxDisplacement:        stats.Max(disp),
		FractionAboveThreshold: float64(countAbove(disp, m.Threshold)) / float64(max(1, d.Len())),
		Threshold:              m.Threshold,
	}
}

// DriftModel moves every element by a constant drift vector plus small noise.
// It models bulk motion (e.g. material deformation under load), where looser
// bounding strategies pay off.
type DriftModel struct {
	Drift geom.Vec3
	Noise float64
	rng   *rand.Rand
}

// NewDriftModel returns a drift movement model.
func NewDriftModel(seed int64, drift geom.Vec3, noise float64) *DriftModel {
	return &DriftModel{Drift: drift, Noise: noise, rng: rand.New(rand.NewSource(seed))}
}

// Step implements MovementModel.
func (m *DriftModel) Step(d *Dataset) MovementStats {
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(1))
	}
	disp := make([]float64, 0, d.Len())
	for i := range d.Elements {
		delta := m.Drift.Add(randomUnit(m.rng).Scale(m.Noise * m.rng.Float64()))
		e := &d.Elements[i]
		e.Translate(delta)
		clampElement(e, d.Universe)
		disp = append(disp, delta.Len())
	}
	return MovementStats{
		Moved:            d.Len(),
		MeanDisplacement: stats.Mean(disp),
		MaxDisplacement:  stats.Max(disp),
		Threshold:        0,
	}
}

// clampElement nudges an element back inside the universe if movement pushed
// it outside (the simulation sciences equivalent of periodic/reflective
// boundary handling; we clamp because it keeps element volume intact).
func clampElement(e *Element, u geom.AABB) {
	var shift geom.Vec3
	for i := 0; i < 3; i++ {
		lo, hi := u.Min.Axis(i), u.Max.Axis(i)
		bmin, bmax := e.Box.Min.Axis(i), e.Box.Max.Axis(i)
		if bmin < lo {
			shift = shift.SetAxis(i, lo-bmin)
		} else if bmax > hi {
			shift = shift.SetAxis(i, hi-bmax)
		}
	}
	if shift != (geom.Vec3{}) {
		e.Translate(shift)
	}
}

// gammaDisplacement draws a Gamma(6, mean/6)-distributed magnitude: the sum
// of six exponentials, scaled so the expectation is mean. The shape parameter
// concentrates the distribution around the mean so that the fraction of large
// displacements matches the paper's plasticity traces.
func gammaDisplacement(r *rand.Rand, mean float64) float64 {
	var s float64
	for i := 0; i < 6; i++ {
		s += r.ExpFloat64()
	}
	return s * mean / 6
}

func countAbove(xs []float64, t float64) int {
	n := 0
	for _, x := range xs {
		if x > t {
			n++
		}
	}
	return n
}
