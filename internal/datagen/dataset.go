// Package datagen builds the synthetic datasets and workloads that stand in
// for the paper's proprietary simulation data (Blue Brain neuron circuits,
// material-deformation meshes, cosmology snapshots). The generators aim to
// reproduce the *geometric character* the paper relies on — thin elongated
// cylinders densely clustered along neuron branches, massive-but-minimal
// per-step movement, selectivity-targeted range queries — rather than the
// absolute data sizes, so that the paper's relative results can be reproduced
// at laptop scale.
package datagen

import (
	"fmt"
	"math/rand"

	"spatialsim/internal/geom"
)

// Element is one spatial element of a simulation model: a neuron morphology
// segment, a particle, or a mesh vertex. Position is the representative point
// (used by point indexes and movement models), Shape is the exact geometry
// (used by refinement and joins), and Box caches Shape's bounding box.
type Element struct {
	ID       int64
	Position geom.Vec3
	Shape    geom.Cylinder
	Box      geom.AABB
}

// RefreshBox recomputes the cached bounding box from the shape.
func (e *Element) RefreshBox() { e.Box = e.Shape.Bounds() }

// Translate moves the element by d, keeping shape, position and box
// consistent.
func (e *Element) Translate(d geom.Vec3) {
	e.Position = e.Position.Add(d)
	e.Shape.Axis.A = e.Shape.Axis.A.Add(d)
	e.Shape.Axis.B = e.Shape.Axis.B.Add(d)
	e.Box = e.Box.Translate(d)
}

// Dataset is a collection of elements inside a universe box.
type Dataset struct {
	Elements []Element
	Universe geom.AABB
}

// Len returns the number of elements.
func (d *Dataset) Len() int { return len(d.Elements) }

// Clone returns a deep copy of the dataset (element slice is copied).
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{
		Elements: append([]Element(nil), d.Elements...),
		Universe: d.Universe,
	}
	return c
}

// Bounds returns the union of all element boxes (the tight universe).
func (d *Dataset) Bounds() geom.AABB {
	b := geom.EmptyAABB()
	for i := range d.Elements {
		b = b.Union(d.Elements[i].Box)
	}
	return b
}

// Validate checks internal consistency: unique IDs, boxes containing shapes,
// finite coordinates. It returns an error describing the first problem found.
func (d *Dataset) Validate() error {
	seen := make(map[int64]struct{}, len(d.Elements))
	for i := range d.Elements {
		e := &d.Elements[i]
		if _, dup := seen[e.ID]; dup {
			return fmt.Errorf("duplicate element ID %d", e.ID)
		}
		seen[e.ID] = struct{}{}
		if !e.Position.IsFinite() {
			return fmt.Errorf("element %d has non-finite position", e.ID)
		}
		if !e.Box.IsValid() {
			return fmt.Errorf("element %d has invalid box %v", e.ID, e.Box)
		}
		if !e.Box.Expand(1e-9).Contains(e.Shape.Bounds()) {
			return fmt.Errorf("element %d box %v does not contain shape bounds %v", e.ID, e.Box, e.Shape.Bounds())
		}
	}
	return nil
}

// UniformConfig configures GenerateUniform.
type UniformConfig struct {
	N        int       // number of elements
	Universe geom.AABB // universe box
	// ElementSize is the typical half-length of an element (cylinder axis
	// half-length). Radius is ElementSize * RadiusRatio.
	ElementSize float64
	RadiusRatio float64
	Seed        int64
}

// GenerateUniform produces N small capsules uniformly distributed in the
// universe. It models the spatially homogeneous workloads (e.g. cosmology
// particles between structure formation).
func GenerateUniform(cfg UniformConfig) *Dataset {
	if cfg.RadiusRatio == 0 {
		cfg.RadiusRatio = 0.3
	}
	if cfg.ElementSize == 0 {
		cfg.ElementSize = cfg.Universe.Size().X / 500
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{Universe: cfg.Universe, Elements: make([]Element, cfg.N)}
	size := cfg.Universe.Size()
	for i := 0; i < cfg.N; i++ {
		p := geom.V(
			cfg.Universe.Min.X+r.Float64()*size.X,
			cfg.Universe.Min.Y+r.Float64()*size.Y,
			cfg.Universe.Min.Z+r.Float64()*size.Z,
		)
		dir := randomUnit(r).Scale(cfg.ElementSize)
		cyl := geom.NewCylinder(p.Sub(dir), p.Add(dir), cfg.ElementSize*cfg.RadiusRatio)
		d.Elements[i] = Element{ID: int64(i), Position: p, Shape: cyl, Box: cyl.Bounds()}
	}
	return d
}

// ClusteredConfig configures GenerateClustered.
type ClusteredConfig struct {
	N           int
	Clusters    int
	Universe    geom.AABB
	ClusterStd  float64 // standard deviation of each Gaussian cluster
	ElementSize float64
	Seed        int64
}

// GenerateClustered produces elements grouped into Gaussian clusters, the
// skewed distribution that stresses data-oriented partitioning (Figure 4 of
// the paper): clusters produce narrow, elongated R-Tree partitions.
func GenerateClustered(cfg ClusteredConfig) *Dataset {
	if cfg.Clusters <= 0 {
		cfg.Clusters = 10
	}
	if cfg.ClusterStd == 0 {
		cfg.ClusterStd = cfg.Universe.Size().X / 50
	}
	if cfg.ElementSize == 0 {
		cfg.ElementSize = cfg.Universe.Size().X / 500
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	size := cfg.Universe.Size()
	centers := make([]geom.Vec3, cfg.Clusters)
	for i := range centers {
		centers[i] = geom.V(
			cfg.Universe.Min.X+r.Float64()*size.X,
			cfg.Universe.Min.Y+r.Float64()*size.Y,
			cfg.Universe.Min.Z+r.Float64()*size.Z,
		)
	}
	d := &Dataset{Universe: cfg.Universe, Elements: make([]Element, cfg.N)}
	for i := 0; i < cfg.N; i++ {
		c := centers[r.Intn(len(centers))]
		p := geom.V(
			clampRange(c.X+r.NormFloat64()*cfg.ClusterStd, cfg.Universe.Min.X, cfg.Universe.Max.X),
			clampRange(c.Y+r.NormFloat64()*cfg.ClusterStd, cfg.Universe.Min.Y, cfg.Universe.Max.Y),
			clampRange(c.Z+r.NormFloat64()*cfg.ClusterStd, cfg.Universe.Min.Z, cfg.Universe.Max.Z),
		)
		dir := randomUnit(r).Scale(cfg.ElementSize)
		cyl := geom.NewCylinder(p.Sub(dir), p.Add(dir), cfg.ElementSize*0.3)
		d.Elements[i] = Element{ID: int64(i), Position: p, Shape: cyl, Box: cyl.Bounds()}
	}
	return d
}

func clampRange(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func randomUnit(r *rand.Rand) geom.Vec3 {
	for {
		v := geom.V(r.Float64()*2-1, r.Float64()*2-1, r.Float64()*2-1)
		l := v.Len()
		if l > 1e-6 && l <= 1 {
			return v.Scale(1 / l)
		}
	}
}
