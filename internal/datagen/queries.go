package datagen

import (
	"math"
	"math/rand"

	"spatialsim/internal/geom"
)

// RangeQueryConfig configures GenerateRangeQueries.
type RangeQueryConfig struct {
	N int // number of queries
	// Selectivity is the target fraction of the universe volume covered by a
	// query box (the paper uses 5e-4 % = 5e-6 as a fraction). Queries are
	// cubes with that volume, placed uniformly at random (the paper: "at
	// random locations ... that cannot be anticipated").
	Selectivity float64
	Universe    geom.AABB
	Seed        int64
}

// GenerateRangeQueries produces selectivity-targeted cubic range queries
// uniformly distributed in the universe.
func GenerateRangeQueries(cfg RangeQueryConfig) []geom.AABB {
	if cfg.Selectivity <= 0 {
		cfg.Selectivity = 5e-6
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	vol := cfg.Universe.Volume() * cfg.Selectivity
	side := math.Cbrt(vol)
	half := geom.V(side/2, side/2, side/2)
	size := cfg.Universe.Size()
	queries := make([]geom.AABB, cfg.N)
	for i := range queries {
		c := geom.V(
			cfg.Universe.Min.X+r.Float64()*size.X,
			cfg.Universe.Min.Y+r.Float64()*size.Y,
			cfg.Universe.Min.Z+r.Float64()*size.Z,
		)
		q := geom.AABBFromCenter(c, half)
		// Clamp to the universe so selectivity near the boundary stays honest.
		q = q.Intersect(cfg.Universe)
		if q.IsEmpty() {
			q = geom.PointAABB(c)
		}
		queries[i] = q
	}
	return queries
}

// GenerateKNNQueries produces query points uniformly distributed in the
// universe, for k-nearest-neighbor workloads.
func GenerateKNNQueries(n int, universe geom.AABB, seed int64) []geom.Vec3 {
	r := rand.New(rand.NewSource(seed))
	size := universe.Size()
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V(
			universe.Min.X+r.Float64()*size.X,
			universe.Min.Y+r.Float64()*size.Y,
			universe.Min.Z+r.Float64()*size.Z,
		)
	}
	return pts
}

// GenerateDataCenteredQueries produces range queries centered on randomly
// chosen dataset elements, modeling monitoring queries that follow the model
// (e.g. visualizing tissue around active neurons). This produces the
// non-uniform query distribution that stresses data-oriented partitions.
func GenerateDataCenteredQueries(d *Dataset, n int, selectivity float64, seed int64) []geom.AABB {
	if d.Len() == 0 {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	vol := d.Universe.Volume() * selectivity
	side := math.Cbrt(vol)
	half := geom.V(side/2, side/2, side/2)
	queries := make([]geom.AABB, n)
	for i := range queries {
		e := d.Elements[r.Intn(d.Len())]
		q := geom.AABBFromCenter(e.Position, half)
		q = q.Intersect(d.Universe)
		if q.IsEmpty() {
			q = geom.PointAABB(e.Position)
		}
		queries[i] = q
	}
	return queries
}
