package datagen

import (
	"math/rand"

	"spatialsim/internal/geom"
)

// NeuronConfig configures GenerateNeurons, the stand-in for the Blue Brain
// Project dataset the paper uses (500k neurons, each modeled with thousands
// of cylinders, inside a 285 µm³ universe). We generate branched random-walk
// morphologies whose segments are thin cylinders; the resulting spatial
// distribution is heavily clustered along branches, which is the property the
// paper's experiments depend on.
type NeuronConfig struct {
	Neurons           int       // number of neuron morphologies
	SegmentsPerNeuron int       // cylinder segments per neuron (approximate)
	Universe          geom.AABB // simulation universe
	SegmentLength     float64   // mean segment length (µm)
	SegmentRadius     float64   // segment radius (µm)
	BranchProbability float64   // probability a growth tip forks at each step
	Seed              int64
}

// DefaultNeuronConfig returns a configuration mimicking the paper's universe:
// a cube of 285 µm³ (side ~6.58 µm is unrealistically small for real neurons,
// so — like the paper's own description — we treat "µm" as the model unit and
// scale segment lengths to produce realistic densities).
func DefaultNeuronConfig(neurons, segmentsPerNeuron int, seed int64) NeuronConfig {
	side := 6.583 // cbrt(285)
	return NeuronConfig{
		Neurons:           neurons,
		SegmentsPerNeuron: segmentsPerNeuron,
		Universe:          geom.NewAABB(geom.V(0, 0, 0), geom.V(side, side, side)),
		SegmentLength:     side / 120,
		SegmentRadius:     side / 1200,
		BranchProbability: 0.08,
		Seed:              seed,
	}
}

// GenerateNeurons produces a branched-morphology dataset. Every element is a
// cylinder segment; element IDs are dense starting at 0.
func GenerateNeurons(cfg NeuronConfig) *Dataset {
	if cfg.Neurons <= 0 {
		cfg.Neurons = 1
	}
	if cfg.SegmentsPerNeuron <= 0 {
		cfg.SegmentsPerNeuron = 100
	}
	if cfg.BranchProbability <= 0 {
		cfg.BranchProbability = 0.08
	}
	if cfg.SegmentLength <= 0 {
		cfg.SegmentLength = cfg.Universe.Size().X / 120
	}
	if cfg.SegmentRadius <= 0 {
		cfg.SegmentRadius = cfg.SegmentLength / 10
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Universe: cfg.Universe,
		Elements: make([]Element, 0, cfg.Neurons*cfg.SegmentsPerNeuron),
	}
	var id int64
	size := cfg.Universe.Size()
	for n := 0; n < cfg.Neurons; n++ {
		soma := geom.V(
			cfg.Universe.Min.X+r.Float64()*size.X,
			cfg.Universe.Min.Y+r.Float64()*size.Y,
			cfg.Universe.Min.Z+r.Float64()*size.Z,
		)
		// Growth tips: position + direction. Start with a few primary
		// dendrites/axon leaving the soma.
		type tip struct {
			pos, dir geom.Vec3
		}
		tips := make([]tip, 0, 8)
		primaries := 2 + r.Intn(4)
		for i := 0; i < primaries; i++ {
			tips = append(tips, tip{pos: soma, dir: randomUnit(r)})
		}
		segments := 0
		for segments < cfg.SegmentsPerNeuron && len(tips) > 0 {
			// Pick a random tip and grow it by one segment.
			ti := r.Intn(len(tips))
			t := tips[ti]
			// Jitter the growth direction (tortuosity).
			dir := t.dir.Add(randomUnit(r).Scale(0.35)).Normalize()
			length := cfg.SegmentLength * (0.6 + 0.8*r.Float64())
			next := t.pos.Add(dir.Scale(length))
			// Reflect at universe boundaries to keep the morphology inside.
			next, dir = reflectIntoUniverse(next, dir, cfg.Universe)
			cyl := geom.NewCylinder(t.pos, next, cfg.SegmentRadius)
			mid := t.pos.Lerp(next, 0.5)
			d.Elements = append(d.Elements, Element{
				ID:       id,
				Position: mid,
				Shape:    cyl,
				Box:      cyl.Bounds(),
			})
			id++
			segments++
			tips[ti] = tip{pos: next, dir: dir}
			// Branch: add a new tip at the current position.
			if r.Float64() < cfg.BranchProbability && len(tips) < 64 {
				bdir := dir.Add(randomUnit(r).Scale(0.9)).Normalize()
				tips = append(tips, tip{pos: next, dir: bdir})
			}
			// Terminate a tip occasionally to keep branch lengths varied.
			if r.Float64() < 0.01 && len(tips) > 1 {
				tips[ti] = tips[len(tips)-1]
				tips = tips[:len(tips)-1]
			}
		}
	}
	return d
}

func reflectIntoUniverse(p, dir geom.Vec3, u geom.AABB) (geom.Vec3, geom.Vec3) {
	for i := 0; i < 3; i++ {
		v := p.Axis(i)
		lo, hi := u.Min.Axis(i), u.Max.Axis(i)
		if v < lo {
			p = p.SetAxis(i, lo+(lo-v))
			dir = dir.SetAxis(i, -dir.Axis(i))
		} else if v > hi {
			p = p.SetAxis(i, hi-(v-hi))
			dir = dir.SetAxis(i, -dir.Axis(i))
		}
		// A pathological reflection could still land outside; clamp.
		v = p.Axis(i)
		if v < lo || v > hi {
			p = p.SetAxis(i, clampRange(v, lo, hi))
		}
	}
	return p, dir
}
