package datagen

import (
	"math"
	"testing"

	"spatialsim/internal/geom"
	"spatialsim/internal/stats"
)

func testUniverse() geom.AABB {
	return geom.NewAABB(geom.V(0, 0, 0), geom.V(100, 100, 100))
}

func TestGenerateUniform(t *testing.T) {
	d := GenerateUniform(UniformConfig{N: 1000, Universe: testUniverse(), Seed: 1})
	if d.Len() != 1000 {
		t.Fatalf("Len = %d", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i := range d.Elements {
		if !testUniverse().ContainsPoint(d.Elements[i].Position) {
			t.Fatalf("element %d outside universe", i)
		}
	}
	// Uniformity sanity check: each half of the universe should hold roughly
	// half the elements.
	left := 0
	for i := range d.Elements {
		if d.Elements[i].Position.X < 50 {
			left++
		}
	}
	if left < 400 || left > 600 {
		t.Errorf("uniform distribution skewed: %d/1000 in left half", left)
	}
}

func TestGenerateUniformDeterministic(t *testing.T) {
	a := GenerateUniform(UniformConfig{N: 50, Universe: testUniverse(), Seed: 7})
	b := GenerateUniform(UniformConfig{N: 50, Universe: testUniverse(), Seed: 7})
	for i := range a.Elements {
		if a.Elements[i].Position != b.Elements[i].Position {
			t.Fatal("same seed produced different datasets")
		}
	}
	c := GenerateUniform(UniformConfig{N: 50, Universe: testUniverse(), Seed: 8})
	same := true
	for i := range a.Elements {
		if a.Elements[i].Position != c.Elements[i].Position {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestGenerateClustered(t *testing.T) {
	d := GenerateClustered(ClusteredConfig{N: 2000, Clusters: 5, Universe: testUniverse(), Seed: 3})
	if d.Len() != 2000 {
		t.Fatalf("Len = %d", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Clustered data should have much higher local density variance than
	// uniform data: measure the spread of per-octant counts.
	u := GenerateUniform(UniformConfig{N: 2000, Universe: testUniverse(), Seed: 3})
	cv := octantCountVariance(d)
	uv := octantCountVariance(u)
	if cv <= uv {
		t.Errorf("clustered octant variance %v should exceed uniform %v", cv, uv)
	}
}

func octantCountVariance(d *Dataset) float64 {
	counts := make([]float64, 8)
	for i := range d.Elements {
		var idx int
		c := d.Universe.Center()
		p := d.Elements[i].Position
		if p.X > c.X {
			idx |= 1
		}
		if p.Y > c.Y {
			idx |= 2
		}
		if p.Z > c.Z {
			idx |= 4
		}
		counts[idx]++
	}
	return stats.Variance(counts)
}

func TestGenerateNeurons(t *testing.T) {
	cfg := DefaultNeuronConfig(20, 200, 42)
	d := GenerateNeurons(cfg)
	if d.Len() != 20*200 {
		t.Fatalf("Len = %d, want %d", d.Len(), 20*200)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// All elements inside the universe (shapes clamped).
	for i := range d.Elements {
		if !d.Universe.ContainsPoint(d.Elements[i].Position) {
			t.Fatalf("element %d position outside universe", i)
		}
	}
	// Neuron segments should be connected: consecutive segments of the same
	// branch share endpoints, so the dataset must be strongly clustered.
	u := GenerateUniform(UniformConfig{N: d.Len(), Universe: cfg.Universe, Seed: 42})
	if octantCountVariance(d) <= octantCountVariance(u) {
		t.Error("neuron dataset should be more clustered than uniform")
	}
	// Segment lengths close to the configured mean.
	var lens []float64
	for i := range d.Elements {
		lens = append(lens, d.Elements[i].Shape.Length())
	}
	mean := stats.Mean(lens)
	if mean < cfg.SegmentLength*0.5 || mean > cfg.SegmentLength*1.5 {
		t.Errorf("mean segment length %v far from configured %v", mean, cfg.SegmentLength)
	}
}

func TestGenerateNeuronsDefaultsAndEdgeCases(t *testing.T) {
	d := GenerateNeurons(NeuronConfig{Universe: testUniverse(), Seed: 1})
	if d.Len() == 0 {
		t.Fatal("zero-config generation produced no elements")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDatasetCloneIndependence(t *testing.T) {
	d := GenerateUniform(UniformConfig{N: 10, Universe: testUniverse(), Seed: 1})
	c := d.Clone()
	c.Elements[0].Translate(geom.V(1, 1, 1))
	if d.Elements[0].Position == c.Elements[0].Position {
		t.Fatal("Clone shares element storage with original")
	}
}

func TestDatasetBoundsAndValidate(t *testing.T) {
	d := GenerateUniform(UniformConfig{N: 100, Universe: testUniverse(), Seed: 5})
	b := d.Bounds()
	if !testUniverse().Expand(1).Contains(b) {
		t.Errorf("Bounds %v escapes universe", b)
	}
	// Introduce a duplicate ID and a broken box; Validate must catch both.
	bad := d.Clone()
	bad.Elements[1].ID = bad.Elements[0].ID
	if err := bad.Validate(); err == nil {
		t.Error("Validate missed duplicate ID")
	}
	bad2 := d.Clone()
	bad2.Elements[2].Box = geom.EmptyAABB()
	if err := bad2.Validate(); err == nil {
		t.Error("Validate missed invalid box")
	}
	bad3 := d.Clone()
	bad3.Elements[3].Position = geom.V(math.NaN(), 0, 0)
	if err := bad3.Validate(); err == nil {
		t.Error("Validate missed non-finite position")
	}
	bad4 := d.Clone()
	bad4.Elements[4].Box = geom.PointAABB(geom.V(0, 0, 0))
	if err := bad4.Validate(); err == nil {
		t.Error("Validate missed box not containing shape")
	}
}

func TestElementTranslateConsistency(t *testing.T) {
	cyl := geom.NewCylinder(geom.V(0, 0, 0), geom.V(1, 0, 0), 0.1)
	e := Element{ID: 1, Position: geom.V(0.5, 0, 0), Shape: cyl, Box: cyl.Bounds()}
	e.Translate(geom.V(2, 3, 4))
	if e.Position != geom.V(2.5, 3, 4) {
		t.Errorf("Position = %v", e.Position)
	}
	want := e.Shape.Bounds()
	if !e.Box.Expand(1e-12).Contains(want) || !want.Expand(1e-12).Contains(e.Box) {
		t.Errorf("Box %v inconsistent with shape bounds %v", e.Box, want)
	}
	e.RefreshBox()
	if e.Box != e.Shape.Bounds() {
		t.Error("RefreshBox mismatch")
	}
}

func TestPlasticityModelStats(t *testing.T) {
	cfg := DefaultNeuronConfig(10, 100, 7)
	d := GenerateNeurons(cfg)
	m := NewPlasticityModel(11)
	st := m.Step(d)
	if st.Moved != d.Len() {
		t.Fatalf("Moved = %d, want all %d", st.Moved, d.Len())
	}
	// Paper: mean displacement 0.04 µm.
	if st.MeanDisplacement < 0.03 || st.MeanDisplacement > 0.05 {
		t.Errorf("mean displacement = %v, want ~0.04", st.MeanDisplacement)
	}
	// Paper: fewer than ~0.5% (we allow up to 2% for the exponential model)
	// of elements move more than 0.1 µm.
	if st.FractionAboveThreshold > 0.02 {
		t.Errorf("fraction above threshold = %v, want < 2%%", st.FractionAboveThreshold)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate after movement: %v", err)
	}
	// Elements stay inside the universe.
	for i := range d.Elements {
		if !d.Universe.Expand(1e-9).Contains(d.Elements[i].Box) {
			t.Fatalf("element %d escaped universe after movement", i)
		}
	}
}

func TestPartialPlasticityModel(t *testing.T) {
	d := GenerateUniform(UniformConfig{N: 5000, Universe: testUniverse(), Seed: 2})
	m := NewPartialPlasticityModel(3, 0.25)
	st := m.Step(d)
	frac := float64(st.Moved) / float64(d.Len())
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("moved fraction = %v, want ~0.25", frac)
	}
}

func TestDriftModel(t *testing.T) {
	d := GenerateUniform(UniformConfig{N: 500, Universe: testUniverse(), Seed: 2})
	before := make([]geom.Vec3, d.Len())
	for i := range d.Elements {
		before[i] = d.Elements[i].Position
	}
	m := NewDriftModel(4, geom.V(0.5, 0, 0), 0.01)
	st := m.Step(d)
	if st.Moved != d.Len() {
		t.Fatalf("Moved = %d", st.Moved)
	}
	// Most elements should have shifted in +X (those at the boundary clamp).
	shifted := 0
	for i := range d.Elements {
		if d.Elements[i].Position.X > before[i].X {
			shifted++
		}
	}
	if float64(shifted) < 0.9*float64(d.Len()) {
		t.Errorf("only %d/%d elements drifted in +X", shifted, d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate after drift: %v", err)
	}
}

func TestGenerateRangeQueriesSelectivity(t *testing.T) {
	u := testUniverse()
	qs := GenerateRangeQueries(RangeQueryConfig{N: 200, Selectivity: 1e-3, Universe: u, Seed: 9})
	if len(qs) != 200 {
		t.Fatalf("len = %d", len(qs))
	}
	targetVol := u.Volume() * 1e-3
	var vols []float64
	for _, q := range qs {
		if !u.Contains(q) {
			t.Fatalf("query %v escapes universe", q)
		}
		vols = append(vols, q.Volume())
	}
	// Mean volume should be close to the target (boundary clamping can only
	// shrink queries).
	mean := stats.Mean(vols)
	if mean > targetVol*1.001 || mean < targetVol*0.5 {
		t.Errorf("mean query volume %v vs target %v", mean, targetVol)
	}
	// Default selectivity path.
	qs2 := GenerateRangeQueries(RangeQueryConfig{N: 5, Universe: u, Seed: 9})
	if len(qs2) != 5 || qs2[0].Volume() <= 0 {
		t.Error("default-selectivity queries invalid")
	}
}

func TestGenerateKNNAndDataCenteredQueries(t *testing.T) {
	u := testUniverse()
	pts := GenerateKNNQueries(100, u, 3)
	if len(pts) != 100 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if !u.ContainsPoint(p) {
			t.Fatalf("kNN query point %v outside universe", p)
		}
	}
	d := GenerateClustered(ClusteredConfig{N: 1000, Clusters: 3, Universe: u, Seed: 3})
	qs := GenerateDataCenteredQueries(d, 50, 1e-3, 4)
	if len(qs) != 50 {
		t.Fatalf("len = %d", len(qs))
	}
	for _, q := range qs {
		if !u.Contains(q) {
			t.Fatalf("data-centered query %v escapes universe", q)
		}
	}
	// Data-centered queries on clustered data must hit at least one element
	// most of the time.
	hits := 0
	for _, q := range qs {
		for i := range d.Elements {
			if q.Intersects(d.Elements[i].Box) {
				hits++
				break
			}
		}
	}
	if hits < len(qs)/2 {
		t.Errorf("only %d/%d data-centered queries hit any element", hits, len(qs))
	}
	if GenerateDataCenteredQueries(&Dataset{}, 5, 1e-3, 1) != nil {
		t.Error("empty dataset should produce nil queries")
	}
}
