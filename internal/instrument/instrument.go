// Package instrument provides the cost accounting used to reproduce the
// paper's query execution breakdowns (Figures 2 and 3 of Heinis et al.,
// EDBT 2014). Index implementations charge work to named cost categories —
// "reading data", "intersection tests (tree)", "intersection tests
// (elements)", "remaining computation" — and experiment harnesses render the
// resulting breakdowns as percentages, exactly as the paper does.
//
// Two complementary accounting modes are supported:
//
//   - operation counting (cheap, deterministic): indexes bump counters for
//     node visits, intersection tests, elements touched, pages read;
//   - time attribution (used by the figure harnesses): a Profile converts the
//     counters into a time breakdown using per-operation costs that are either
//     measured (memory) or modeled (simulated disk latencies).
package instrument

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Cost categories used throughout the library. They mirror the categories of
// the paper's Figures 2 and 3.
const (
	CatReadingData      = "reading data"
	CatIntersectTree    = "intersection tests (tree)"
	CatIntersectElement = "intersection tests (elements)"
	CatRemaining        = "remaining computation"
)

// Counters accumulates operation counts for a query, a batch of queries, or a
// whole simulation step. The zero value is ready to use. Counters is safe for
// concurrent use.
type Counters struct {
	nodeVisits        atomic.Int64 // inner/leaf nodes visited during traversal
	treeIntersectTest atomic.Int64 // MBR tests against tree nodes / grid cells
	elemIntersectTest atomic.Int64 // exact geometry tests against data elements
	elementsTouched   atomic.Int64 // candidate elements examined
	resultsProduced   atomic.Int64 // elements reported as results
	pagesRead         atomic.Int64 // disk pages fetched (disk indexes only)
	bytesRead         atomic.Int64 // bytes transferred from the (simulated) disk
	updates           atomic.Int64 // element updates applied to the index
	cellMoves         atomic.Int64 // grid cell reassignments (grid indexes only)
	comparisons       atomic.Int64 // pairwise comparisons (joins)
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	c.nodeVisits.Store(0)
	c.treeIntersectTest.Store(0)
	c.elemIntersectTest.Store(0)
	c.elementsTouched.Store(0)
	c.resultsProduced.Store(0)
	c.pagesRead.Store(0)
	c.bytesRead.Store(0)
	c.updates.Store(0)
	c.cellMoves.Store(0)
	c.comparisons.Store(0)
}

// AddNodeVisits records n visited index nodes.
func (c *Counters) AddNodeVisits(n int64) { c.nodeVisits.Add(n) }

// AddTreeIntersectTests records n MBR intersection tests against index nodes.
func (c *Counters) AddTreeIntersectTests(n int64) { c.treeIntersectTest.Add(n) }

// AddElemIntersectTests records n intersection tests against data elements.
func (c *Counters) AddElemIntersectTests(n int64) { c.elemIntersectTest.Add(n) }

// AddElementsTouched records n candidate elements examined.
func (c *Counters) AddElementsTouched(n int64) { c.elementsTouched.Add(n) }

// AddResults records n result elements produced.
func (c *Counters) AddResults(n int64) { c.resultsProduced.Add(n) }

// AddPagesRead records n disk pages read.
func (c *Counters) AddPagesRead(n int64) { c.pagesRead.Add(n) }

// AddBytesRead records n bytes transferred from disk.
func (c *Counters) AddBytesRead(n int64) { c.bytesRead.Add(n) }

// AddUpdates records n element updates applied to an index.
func (c *Counters) AddUpdates(n int64) { c.updates.Add(n) }

// AddCellMoves records n grid cell reassignments.
func (c *Counters) AddCellMoves(n int64) { c.cellMoves.Add(n) }

// AddComparisons records n pairwise comparisons performed by a join.
func (c *Counters) AddComparisons(n int64) { c.comparisons.Add(n) }

// NodeVisits returns the number of index nodes visited.
func (c *Counters) NodeVisits() int64 { return c.nodeVisits.Load() }

// TreeIntersectTests returns the number of node-level intersection tests.
func (c *Counters) TreeIntersectTests() int64 { return c.treeIntersectTest.Load() }

// ElemIntersectTests returns the number of element-level intersection tests.
func (c *Counters) ElemIntersectTests() int64 { return c.elemIntersectTest.Load() }

// ElementsTouched returns the number of candidate elements examined.
func (c *Counters) ElementsTouched() int64 { return c.elementsTouched.Load() }

// Results returns the number of results produced.
func (c *Counters) Results() int64 { return c.resultsProduced.Load() }

// PagesRead returns the number of disk pages read.
func (c *Counters) PagesRead() int64 { return c.pagesRead.Load() }

// BytesRead returns the number of bytes transferred from disk.
func (c *Counters) BytesRead() int64 { return c.bytesRead.Load() }

// Updates returns the number of element updates applied.
func (c *Counters) Updates() int64 { return c.updates.Load() }

// CellMoves returns the number of grid cell reassignments.
func (c *Counters) CellMoves() int64 { return c.cellMoves.Load() }

// Comparisons returns the number of pairwise comparisons.
func (c *Counters) Comparisons() int64 { return c.comparisons.Load() }

// Snapshot returns a plain-value copy of the counters, convenient for diffs
// and reporting.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		NodeVisits:         c.NodeVisits(),
		TreeIntersectTests: c.TreeIntersectTests(),
		ElemIntersectTests: c.ElemIntersectTests(),
		ElementsTouched:    c.ElementsTouched(),
		Results:            c.Results(),
		PagesRead:          c.PagesRead(),
		BytesRead:          c.BytesRead(),
		Updates:            c.Updates(),
		CellMoves:          c.CellMoves(),
		Comparisons:        c.Comparisons(),
	}
}

// CounterSnapshot is an immutable copy of a Counters value. The JSON tags
// are the wire shape of the serving layer's stats endpoint.
type CounterSnapshot struct {
	NodeVisits         int64 `json:"node_visits"`
	TreeIntersectTests int64 `json:"tree_intersect_tests"`
	ElemIntersectTests int64 `json:"elem_intersect_tests"`
	ElementsTouched    int64 `json:"elements_touched"`
	Results            int64 `json:"results"`
	PagesRead          int64 `json:"pages_read"`
	BytesRead          int64 `json:"bytes_read"`
	Updates            int64 `json:"updates"`
	CellMoves          int64 `json:"cell_moves"`
	Comparisons        int64 `json:"comparisons"`
}

// Add returns the component-wise sum s + o. It is the aggregation primitive
// used to fold per-worker counter snapshots into one batch-level accounting
// (the parallel execution engine keeps one Counters per worker so the paper's
// cost categories survive parallel execution without atomic contention).
func (s CounterSnapshot) Add(o CounterSnapshot) CounterSnapshot {
	return CounterSnapshot{
		NodeVisits:         s.NodeVisits + o.NodeVisits,
		TreeIntersectTests: s.TreeIntersectTests + o.TreeIntersectTests,
		ElemIntersectTests: s.ElemIntersectTests + o.ElemIntersectTests,
		ElementsTouched:    s.ElementsTouched + o.ElementsTouched,
		Results:            s.Results + o.Results,
		PagesRead:          s.PagesRead + o.PagesRead,
		BytesRead:          s.BytesRead + o.BytesRead,
		Updates:            s.Updates + o.Updates,
		CellMoves:          s.CellMoves + o.CellMoves,
		Comparisons:        s.Comparisons + o.Comparisons,
	}
}

// Sub returns the component-wise difference s - o.
func (s CounterSnapshot) Sub(o CounterSnapshot) CounterSnapshot {
	return CounterSnapshot{
		NodeVisits:         s.NodeVisits - o.NodeVisits,
		TreeIntersectTests: s.TreeIntersectTests - o.TreeIntersectTests,
		ElemIntersectTests: s.ElemIntersectTests - o.ElemIntersectTests,
		ElementsTouched:    s.ElementsTouched - o.ElementsTouched,
		Results:            s.Results - o.Results,
		PagesRead:          s.PagesRead - o.PagesRead,
		BytesRead:          s.BytesRead - o.BytesRead,
		Updates:            s.Updates - o.Updates,
		CellMoves:          s.CellMoves - o.CellMoves,
		Comparisons:        s.Comparisons - o.Comparisons,
	}
}

// Breakdown is a set of named durations summing to a total. It is the shape of
// the paper's Figure 2 and Figure 3 bars.
type Breakdown struct {
	parts map[string]time.Duration
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{parts: make(map[string]time.Duration)}
}

// Add charges d to the named category.
func (b *Breakdown) Add(category string, d time.Duration) {
	b.parts[category] += d
}

// Get returns the duration charged to the named category.
func (b *Breakdown) Get(category string) time.Duration { return b.parts[category] }

// Total returns the sum of all categories.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b.parts {
		t += d
	}
	return t
}

// Percent returns the share (0-100) of the named category.
func (b *Breakdown) Percent(category string) float64 {
	total := b.Total()
	if total == 0 {
		return 0
	}
	return 100 * float64(b.parts[category]) / float64(total)
}

// Categories returns the category names sorted by descending share.
func (b *Breakdown) Categories() []string {
	names := make([]string, 0, len(b.parts))
	for n := range b.parts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if b.parts[names[i]] != b.parts[names[j]] {
			return b.parts[names[i]] > b.parts[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// String renders the breakdown as "cat: xx.x%, ..." in descending order.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for i, name := range b.Categories() {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s: %.1f%%", name, b.Percent(name))
	}
	return sb.String()
}

// Timer measures wall-clock durations and attributes them to a category of a
// Breakdown. It is intentionally minimal: Start/Stop pairs around hot regions.
type Timer struct {
	start time.Time
}

// Start begins timing.
func (t *Timer) Start() { t.start = time.Now() }

// Stop ends timing and charges the elapsed time to the category.
func (t *Timer) Stop(b *Breakdown, category string) time.Duration {
	d := time.Since(t.start)
	b.Add(category, d)
	return d
}

// CostModel converts operation counts into a time breakdown. The per-operation
// costs are calibrated by the experiment harnesses (measured for in-memory
// operations, modeled for the simulated disk).
type CostModel struct {
	// PageReadCost is the cost of fetching one page from the (simulated) disk.
	PageReadCost time.Duration
	// NodeTestCost is the cost of one MBR intersection test against a tree node.
	NodeTestCost time.Duration
	// ElementTestCost is the cost of one exact intersection test against a data
	// element.
	ElementTestCost time.Duration
	// ElementReadCost is the in-memory cost of touching one candidate element
	// (pointer chase + cache miss); charged to "reading data" for in-memory
	// indexes.
	ElementReadCost time.Duration
	// OverheadCost is charged once per query to "remaining computation"
	// (result materialization, queue maintenance, etc.).
	OverheadCost time.Duration
}

// Apply converts the counter snapshot into a Figure 2/3-style breakdown.
func (m CostModel) Apply(s CounterSnapshot, queries int) *Breakdown {
	b := NewBreakdown()
	b.Add(CatReadingData, time.Duration(s.PagesRead)*m.PageReadCost+
		time.Duration(s.ElementsTouched)*m.ElementReadCost)
	b.Add(CatIntersectTree, time.Duration(s.TreeIntersectTests)*m.NodeTestCost)
	b.Add(CatIntersectElement, time.Duration(s.ElemIntersectTests)*m.ElementTestCost)
	b.Add(CatRemaining, time.Duration(queries)*m.OverheadCost)
	return b
}
