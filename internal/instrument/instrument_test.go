package instrument

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersBasic(t *testing.T) {
	var c Counters
	c.AddNodeVisits(3)
	c.AddTreeIntersectTests(10)
	c.AddElemIntersectTests(20)
	c.AddElementsTouched(20)
	c.AddResults(5)
	c.AddPagesRead(7)
	c.AddBytesRead(7 * 4096)
	c.AddUpdates(2)
	c.AddCellMoves(1)
	c.AddComparisons(100)

	if c.NodeVisits() != 3 || c.TreeIntersectTests() != 10 || c.ElemIntersectTests() != 20 {
		t.Error("traversal counters wrong")
	}
	if c.ElementsTouched() != 20 || c.Results() != 5 {
		t.Error("element counters wrong")
	}
	if c.PagesRead() != 7 || c.BytesRead() != 7*4096 {
		t.Error("I/O counters wrong")
	}
	if c.Updates() != 2 || c.CellMoves() != 1 || c.Comparisons() != 100 {
		t.Error("update/join counters wrong")
	}

	c.Reset()
	if c.Snapshot() != (CounterSnapshot{}) {
		t.Error("Reset did not zero counters")
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddElemIntersectTests(1)
				c.AddNodeVisits(2)
			}
		}()
	}
	wg.Wait()
	if c.ElemIntersectTests() != 8000 {
		t.Errorf("ElemIntersectTests = %d, want 8000", c.ElemIntersectTests())
	}
	if c.NodeVisits() != 16000 {
		t.Errorf("NodeVisits = %d, want 16000", c.NodeVisits())
	}
}

func TestSnapshotSub(t *testing.T) {
	var c Counters
	c.AddPagesRead(10)
	before := c.Snapshot()
	c.AddPagesRead(5)
	c.AddResults(3)
	diff := c.Snapshot().Sub(before)
	if diff.PagesRead != 5 || diff.Results != 3 || diff.NodeVisits != 0 {
		t.Errorf("Sub = %+v", diff)
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	b.Add(CatReadingData, 10*time.Millisecond)
	b.Add(CatIntersectTree, 55*time.Millisecond)
	b.Add(CatIntersectElement, 25*time.Millisecond)
	b.Add(CatRemaining, 10*time.Millisecond)

	if b.Total() != 100*time.Millisecond {
		t.Errorf("Total = %v", b.Total())
	}
	if p := b.Percent(CatIntersectTree); p != 55 {
		t.Errorf("Percent tree = %v", p)
	}
	if p := b.Percent("nonexistent"); p != 0 {
		t.Errorf("Percent missing = %v", p)
	}
	cats := b.Categories()
	if cats[0] != CatIntersectTree || cats[1] != CatIntersectElement {
		t.Errorf("Categories order = %v", cats)
	}
	s := b.String()
	if !strings.Contains(s, "intersection tests (tree): 55.0%") {
		t.Errorf("String = %q", s)
	}
}

func TestBreakdownEmpty(t *testing.T) {
	b := NewBreakdown()
	if b.Total() != 0 {
		t.Error("empty total nonzero")
	}
	if b.Percent(CatReadingData) != 0 {
		t.Error("empty percent nonzero")
	}
	if len(b.Categories()) != 0 {
		t.Error("empty categories nonempty")
	}
}

func TestTimer(t *testing.T) {
	b := NewBreakdown()
	var tm Timer
	tm.Start()
	time.Sleep(2 * time.Millisecond)
	d := tm.Stop(b, CatRemaining)
	if d < time.Millisecond {
		t.Errorf("timer measured %v, expected >= 1ms", d)
	}
	if b.Get(CatRemaining) != d {
		t.Error("breakdown not charged")
	}
}

func TestCostModelApply(t *testing.T) {
	m := CostModel{
		PageReadCost:    10 * time.Millisecond,
		NodeTestCost:    time.Microsecond,
		ElementTestCost: 2 * time.Microsecond,
		ElementReadCost: 100 * time.Nanosecond,
		OverheadCost:    time.Millisecond,
	}
	s := CounterSnapshot{
		PagesRead:          100,
		TreeIntersectTests: 1000,
		ElemIntersectTests: 500,
		ElementsTouched:    500,
	}
	b := m.Apply(s, 10)
	if b.Get(CatReadingData) != 100*10*time.Millisecond+500*100*time.Nanosecond {
		t.Errorf("reading data = %v", b.Get(CatReadingData))
	}
	if b.Get(CatIntersectTree) != 1000*time.Microsecond {
		t.Errorf("tree tests = %v", b.Get(CatIntersectTree))
	}
	if b.Get(CatIntersectElement) != 500*2*time.Microsecond {
		t.Errorf("element tests = %v", b.Get(CatIntersectElement))
	}
	if b.Get(CatRemaining) != 10*time.Millisecond {
		t.Errorf("remaining = %v", b.Get(CatRemaining))
	}
	// Disk-style model: page reads dominate.
	if b.Percent(CatReadingData) < 90 {
		t.Errorf("disk-style model should be I/O dominated, got %v%%", b.Percent(CatReadingData))
	}
}
