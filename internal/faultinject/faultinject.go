// Package faultinject is the failpoint registry of spatialsim's robustness
// substrate: named injection points compiled into the storage and serving
// layers that tests (and chaos jobs) arm with error, latency and torn-write
// faults. The paper's predictability thesis cuts both ways — a serving layer
// is only predictable if its behavior under a sick disk or a slow shard is
// exercised, not assumed — and failpoints make those conditions reproducible:
// every probabilistic decision is drawn from one seeded generator, so a
// failing chaos run replays byte-for-byte from its seed.
//
// Production cost is one atomic load per instrumented operation while the
// registry is disarmed (no faults enabled); the slow path is taken only by
// tests. Failpoint names are declared next to the code they instrument (see
// the Fault* constants in internal/serve and internal/storage usage).
package faultinject

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error surfaced by an armed failpoint whose Spec
// names no explicit error. Callers distinguish injected faults from organic
// ones with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Spec configures one failpoint. Rates are independent probabilities in
// [0, 1]; a hit rolls torn-write first (write callers only), then error, then
// latency, and at most one behavior fires per hit.
type Spec struct {
	// ErrRate is the probability a hit fails with Err.
	ErrRate float64
	// Err is the error an ErrRate hit returns (nil picks ErrInjected).
	Err error
	// LatencyRate is the probability a hit sleeps for Latency. The sleep is
	// context-interruptible through HitCtx — an injected stall never outlives
	// the caller's deadline.
	LatencyRate float64
	Latency     time.Duration
	// TornRate is the probability a CheckWrite hit is torn: only a random
	// proper prefix of the payload is written before the error surfaces,
	// simulating a crash mid-write.
	TornRate float64
	// Count caps how many times this failpoint triggers (0 = unlimited);
	// beyond the cap it behaves as disabled. A Count of 1 injects exactly one
	// deterministic fault.
	Count int64
}

// point is one armed failpoint.
type point struct {
	spec      Spec
	triggered int64
}

// Registry holds a set of armed failpoints and the seeded generator their
// decisions draw from. The zero number of armed points keeps the fast path to
// a single atomic load. All methods are safe for concurrent use.
type Registry struct {
	armed  atomic.Bool
	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*point
	// total counts every injected fault across all points, surviving
	// Disable/Reset (per-point counts die with their point) — the monotonic
	// series the metrics exposition reads.
	total atomic.Int64
}

// NewRegistry returns an empty registry whose decisions are deterministic in
// seed.
func NewRegistry(seed int64) *Registry {
	return &Registry{rng: rand.New(rand.NewSource(seed)), points: map[string]*point{}}
}

// Enable arms (or re-arms) the named failpoint.
func (r *Registry) Enable(name string, spec Spec) {
	r.mu.Lock()
	r.points[name] = &point{spec: spec}
	r.armed.Store(true)
	r.mu.Unlock()
}

// Disable disarms the named failpoint.
func (r *Registry) Disable(name string) {
	r.mu.Lock()
	delete(r.points, name)
	r.armed.Store(len(r.points) > 0)
	r.mu.Unlock()
}

// Reset disarms every failpoint.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.points = map[string]*point{}
	r.armed.Store(false)
	r.mu.Unlock()
}

// SetSeed re-seeds the decision generator (typically alongside Reset, at the
// start of a reproducible run).
func (r *Registry) SetSeed(seed int64) {
	r.mu.Lock()
	r.rng = rand.New(rand.NewSource(seed))
	r.mu.Unlock()
}

// Triggered reports how many faults the named failpoint has injected.
func (r *Registry) Triggered(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p := r.points[name]; p != nil {
		return p.triggered
	}
	return 0
}

// decision is one resolved failpoint roll.
type decision struct {
	err     error
	latency time.Duration
	torn    bool
	tornAt  float64 // fraction of the payload written before the tear
}

// decide rolls the named failpoint. The rng is consulted under the lock, so
// concurrent callers serialize into one deterministic decision sequence.
func (r *Registry) decide(name string, write bool) (decision, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.points[name]
	if p == nil {
		return decision{}, false
	}
	if p.spec.Count > 0 && p.triggered >= p.spec.Count {
		return decision{}, false
	}
	var d decision
	switch {
	case write && p.spec.TornRate > 0 && r.rng.Float64() < p.spec.TornRate:
		d.torn = true
		d.tornAt = r.rng.Float64()
		d.err = p.spec.Err
	case p.spec.ErrRate > 0 && r.rng.Float64() < p.spec.ErrRate:
		d.err = p.spec.Err
		if d.err == nil {
			d.err = ErrInjected
		}
	case p.spec.LatencyRate > 0 && r.rng.Float64() < p.spec.LatencyRate:
		d.latency = p.spec.Latency
	default:
		return decision{}, false
	}
	if d.torn && d.err == nil {
		d.err = ErrInjected
	}
	p.triggered++
	r.total.Add(1)
	return d, true
}

// TotalTriggered reports how many faults the registry has injected across all
// failpoints, including ones since disarmed.
func (r *Registry) TotalTriggered() int64 { return r.total.Load() }

// HitCtx consults the named failpoint: it returns nil when the point is
// disarmed (or rolls clean), sleeps an injected latency (interruptible by
// ctx, returning ctx.Err() if the deadline fires first), or returns the
// injected error. A nil ctx makes latency sleeps uninterruptible.
func (r *Registry) HitCtx(ctx context.Context, name string) error {
	if !r.armed.Load() {
		return nil
	}
	d, ok := r.decide(name, false)
	if !ok {
		return nil
	}
	if d.latency > 0 {
		return sleepCtx(ctx, d.latency)
	}
	return d.err
}

// Hit is HitCtx without a context.
func (r *Registry) Hit(name string) error { return r.HitCtx(nil, name) }

// CheckWrite consults the named failpoint for a write of n bytes. It returns
// how many bytes the caller should actually write and the error to report:
// (n, nil) when clean, (prefix < n, err) for a torn write — the caller writes
// the prefix and surfaces the error, exactly the crash-mid-write shape — and
// (0, err) for a plain injected write error.
func (r *Registry) CheckWrite(name string, n int) (int, error) {
	if !r.armed.Load() {
		return n, nil
	}
	d, ok := r.decide(name, true)
	if !ok {
		return n, nil
	}
	if d.latency > 0 {
		_ = sleepCtx(nil, d.latency)
		return n, nil
	}
	if d.torn {
		return int(float64(n) * d.tornAt), d.err
	}
	return 0, d.err
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Default is the process-wide registry the production failpoints consult.
// Tests arm it (and must Reset it on cleanup); production never does, keeping
// every instrumented operation at one atomic load.
var Default = NewRegistry(1)

// Enable arms a failpoint on the Default registry.
func Enable(name string, spec Spec) { Default.Enable(name, spec) }

// Disable disarms a failpoint on the Default registry.
func Disable(name string) { Default.Disable(name) }

// Reset disarms every failpoint on the Default registry.
func Reset() { Default.Reset() }

// SetSeed re-seeds the Default registry.
func SetSeed(seed int64) { Default.SetSeed(seed) }

// Triggered reports the Default registry's injection count for name.
func Triggered(name string) int64 { return Default.Triggered(name) }

// TotalTriggered reports the Default registry's all-points injection count.
func TotalTriggered() int64 { return Default.TotalTriggered() }

// HitCtx consults a failpoint on the Default registry.
func HitCtx(ctx context.Context, name string) error { return Default.HitCtx(ctx, name) }

// Hit consults a failpoint on the Default registry without a context.
func Hit(name string) error { return Default.Hit(name) }

// CheckWrite consults a write failpoint on the Default registry.
func CheckWrite(name string, n int) (int, error) { return Default.CheckWrite(name, n) }
