package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDeterministicSequence is the replay guarantee: two registries with the
// same seed and the same call sequence inject exactly the same faults.
func TestDeterministicSequence(t *testing.T) {
	run := func() []bool {
		r := NewRegistry(42)
		r.Enable("p", Spec{ErrRate: 0.3})
		hits := make([]bool, 200)
		for i := range hits {
			hits[i] = r.Hit("p") != nil
		}
		return hits
	}
	a, b := run(), run()
	var injected int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged between identical seeds", i)
		}
		if a[i] {
			injected++
		}
	}
	if injected == 0 || injected == len(a) {
		t.Fatalf("ErrRate 0.3 injected %d/%d faults — rate not applied", injected, len(a))
	}
}

func TestCountCapsInjections(t *testing.T) {
	r := NewRegistry(1)
	r.Enable("p", Spec{ErrRate: 1, Count: 3})
	var injected int
	for i := 0; i < 50; i++ {
		if r.Hit("p") != nil {
			injected++
		}
	}
	if injected != 3 {
		t.Fatalf("Count=3 injected %d faults", injected)
	}
	if got := r.Triggered("p"); got != 3 {
		t.Fatalf("Triggered = %d, want 3", got)
	}
}

func TestDisarmedIsClean(t *testing.T) {
	r := NewRegistry(1)
	if err := r.Hit("never-enabled"); err != nil {
		t.Fatalf("disarmed registry injected: %v", err)
	}
	r.Enable("p", Spec{ErrRate: 1})
	r.Disable("p")
	if err := r.Hit("p"); err != nil {
		t.Fatalf("disabled failpoint injected: %v", err)
	}
	r.Enable("p", Spec{ErrRate: 1})
	r.Reset()
	if err := r.Hit("p"); err != nil {
		t.Fatalf("reset registry injected: %v", err)
	}
}

func TestInjectedErrorIdentity(t *testing.T) {
	r := NewRegistry(1)
	r.Enable("p", Spec{ErrRate: 1})
	if err := r.Hit("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("default injected error = %v, want ErrInjected", err)
	}
	custom := errors.New("custom disk error")
	r.Enable("p", Spec{ErrRate: 1, Err: custom})
	if err := r.Hit("p"); !errors.Is(err, custom) {
		t.Fatalf("custom injected error = %v, want %v", err, custom)
	}
}

// TestCheckWriteTorn pins the torn-write contract: the prefix is a proper
// prefix (0 <= n < payload) and the error always surfaces.
func TestCheckWriteTorn(t *testing.T) {
	r := NewRegistry(7)
	r.Enable("w", Spec{TornRate: 1})
	for i := 0; i < 20; i++ {
		n, err := r.CheckWrite("w", 1000)
		if err == nil {
			t.Fatal("torn write reported no error")
		}
		if n < 0 || n >= 1000 {
			t.Fatalf("torn prefix %d out of [0, 1000)", n)
		}
	}
}

func TestCheckWriteClean(t *testing.T) {
	r := NewRegistry(1)
	n, err := r.CheckWrite("unarmed", 512)
	if n != 512 || err != nil {
		t.Fatalf("disarmed CheckWrite = (%d, %v), want (512, nil)", n, err)
	}
}

// TestLatencyInterruptibleByContext: an injected stall must not outlive the
// caller's deadline.
func TestLatencyInterruptibleByContext(t *testing.T) {
	r := NewRegistry(1)
	r.Enable("slow", Spec{LatencyRate: 1, Latency: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := r.HitCtx(ctx, "slow")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("interrupted latency returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("injected stall outlived the deadline by far: %v", elapsed)
	}
}
