package storage

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spatialsim/internal/obs"
)

// TestRegisterPoolMetricsSplitsZeroCopy pins the metric split: a zero-copy
// pool's passthrough traffic lands in the zero_copy series, never in the
// hit/miss series, and the two rates disagree exactly when the cache is
// bypassed.
func TestRegisterPoolMetricsSplitsZeroCopy(t *testing.T) {
	const pageSize = 512

	// A copying pool: hits and misses are frame-cache traffic.
	mem := NewDisk(DiskConfig{PageSize: pageSize})
	id := mem.Allocate()
	if err := mem.Write(id, []byte{1}); err != nil {
		t.Fatal(err)
	}
	copying := NewBufferPool(mem, 4)
	if _, err := copying.Get(id); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := copying.Get(id); err != nil { // hit
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	RegisterPoolMetrics(reg, "paged", copying)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"spatial_pool_paged_hits_total 1",
		"spatial_pool_paged_misses_total 1",
		"spatial_pool_paged_zero_copy_total 0",
		"spatial_pool_paged_hit_rate 0.5",
		"spatial_pool_paged_zero_copy_rate 0",
	} {
		if !hasLine(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	if !MmapSupported() {
		t.Skip("mmap not supported; zero-copy half skipped")
	}

	// A mapped pool: every lookup is a passthrough, none is a cache hit.
	path := filepath.Join(t.TempDir(), "pages.bin")
	if err := os.WriteFile(path, make([]byte, 4*pageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenMmapDisk(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	mapped := NewBufferPool(disk, 4)
	for i := 0; i < 3; i++ {
		if _, err := mapped.Get(PageID(i)); err != nil {
			t.Fatal(err)
		}
	}

	reg2 := obs.NewRegistry()
	RegisterPoolMetrics(reg2, "mapped", mapped)
	sb.Reset()
	reg2.WritePrometheus(&sb)
	text = sb.String()
	for _, want := range []string{
		"spatial_pool_mapped_hits_total 0",
		"spatial_pool_mapped_misses_total 0",
		"spatial_pool_mapped_zero_copy_total 3",
		"spatial_pool_mapped_hit_rate 0",
		"spatial_pool_mapped_zero_copy_rate 1",
	} {
		if !hasLine(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func hasLine(text, prefix string) bool {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			return true
		}
	}
	return false
}
