//go:build linux

package storage

import (
	"syscall"
	"unsafe"
)

const mincoreSupported = true

// mincoreResident counts the resident bytes of a mapping via mincore(2): one
// status byte per page, low bit set when the page is in core. The count is a
// direct proxy for "queries over this mapping will not fault" — the
// page-fault-rate signal the /metrics residency gauge exposes.
func mincoreResident(data []byte) (int64, bool) {
	pageSize := syscall.Getpagesize()
	pages := (len(data) + pageSize - 1) / pageSize
	if pages == 0 {
		return 0, true
	}
	vec := make([]byte, pages)
	_, _, errno := syscall.Syscall(
		syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&data[0])),
		uintptr(len(data)),
		uintptr(unsafe.Pointer(&vec[0])),
	)
	if errno != 0 {
		return 0, false
	}
	var resident int64
	for _, b := range vec {
		if b&1 != 0 {
			resident += int64(pageSize)
		}
	}
	if resident > int64(len(data)) {
		resident = int64(len(data))
	}
	return resident, true
}
