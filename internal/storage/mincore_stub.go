//go:build !linux

package storage

const mincoreSupported = false

func mincoreResident([]byte) (int64, bool) { return 0, false }
