// Package storage simulates the disk subsystem the paper's Figure 2
// experiment runs on: a page-oriented block device with a configurable
// latency model and an LRU buffer pool.
//
// The substitution is deliberate (see DESIGN.md): the paper uses a physical
// SAS disk array with a cold OS cache, and only relies on the qualitative
// property that random page reads cost milliseconds while in-memory
// computation costs nanoseconds. The simulated disk accumulates *virtual*
// I/O time according to the latency model instead of sleeping, which keeps
// the experiment fast and deterministic while preserving the cost shape.
//
// Two real-file pagers share the same Pager contract: FileDisk (pread into
// caller buffers, used by the durable store's write and verify paths) and
// MmapDisk (a read-only memory mapping whose page views are zero-copy
// slices of the mapped region — the serving layer's mapped recovery path).
// The sharded BufferPool sits above either, pinning pages for callers that
// hold views and passing mapped views through without caching or copying.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// PageID identifies a page on the simulated disk.
type PageID int64

// InvalidPage is the zero value sentinel for "no page".
const InvalidPage PageID = -1

// DiskConfig configures the latency model of the simulated disk.
type DiskConfig struct {
	// PageSize is the size of one page in bytes (default 4096, the paper's
	// node/page size).
	PageSize int
	// SeekLatency is charged for every page read (head seek + rotational
	// delay for a random read on spinning media). Default 5 ms.
	SeekLatency time.Duration
	// TransferRate is the sequential transfer rate in bytes per second used
	// to charge transfer time per page. Default 150 MB/s.
	TransferRate float64
}

// DefaultDiskConfig returns the configuration used by the Figure 2
// experiment: 4 KB pages on a 7200 rpm-class disk.
func DefaultDiskConfig() DiskConfig {
	return DiskConfig{
		PageSize:     4096,
		SeekLatency:  5 * time.Millisecond,
		TransferRate: 150 * 1024 * 1024,
	}
}

func (c DiskConfig) withDefaults() DiskConfig {
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.SeekLatency <= 0 {
		c.SeekLatency = 5 * time.Millisecond
	}
	if c.TransferRate <= 0 {
		c.TransferRate = 150 * 1024 * 1024
	}
	return c
}

// PageReadCost returns the simulated cost of reading one page.
func (c DiskConfig) PageReadCost() time.Duration {
	c = c.withDefaults()
	transfer := time.Duration(float64(c.PageSize) / c.TransferRate * float64(time.Second))
	return c.SeekLatency + transfer
}

// DiskStats reports the cumulative activity of a Disk.
type DiskStats struct {
	PagesAllocated int64
	PageReads      int64
	PageWrites     int64
	BytesRead      int64
	BytesWritten   int64
	// SimulatedReadTime is the total virtual time charged for reads.
	SimulatedReadTime time.Duration
}

// Disk is an in-memory simulation of a page-oriented block device. All
// methods are safe for concurrent use.
type Disk struct {
	cfg DiskConfig

	mu    sync.Mutex
	pages [][]byte
	stats DiskStats
}

// NewDisk returns an empty simulated disk.
func NewDisk(cfg DiskConfig) *Disk {
	return &Disk{cfg: cfg.withDefaults()}
}

// Config returns the disk's configuration (with defaults applied).
func (d *Disk) Config() DiskConfig { return d.cfg }

// PageSize returns the page size in bytes.
func (d *Disk) PageSize() int { return d.cfg.PageSize }

// NumPages returns the number of allocated pages.
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// Allocate reserves a new zeroed page and returns its id.
func (d *Disk) Allocate() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(len(d.pages))
	d.pages = append(d.pages, make([]byte, d.cfg.PageSize))
	d.stats.PagesAllocated++
	return id
}

var (
	// ErrPageOutOfRange is returned for reads/writes of unallocated pages.
	ErrPageOutOfRange = errors.New("storage: page id out of range")
	// ErrPageTooLarge is returned when writing more than a page of data.
	ErrPageTooLarge = errors.New("storage: data exceeds page size")
)

// Write stores data into the page. Data shorter than the page size leaves the
// remainder zeroed.
func (d *Disk) Write(id PageID, data []byte) error {
	if len(data) > d.cfg.PageSize {
		return fmt.Errorf("%w: %d > %d", ErrPageTooLarge, len(data), d.cfg.PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || int(id) >= len(d.pages) {
		return fmt.Errorf("%w: %d", ErrPageOutOfRange, id)
	}
	copy(d.pages[id], data)
	for i := len(data); i < d.cfg.PageSize; i++ {
		d.pages[id][i] = 0
	}
	d.stats.PageWrites++
	d.stats.BytesWritten += int64(d.cfg.PageSize)
	return nil
}

// Read returns a copy of the page contents and charges the simulated read
// latency.
func (d *Disk) Read(id PageID) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || int(id) >= len(d.pages) {
		return nil, fmt.Errorf("%w: %d", ErrPageOutOfRange, id)
	}
	d.stats.PageReads++
	d.stats.BytesRead += int64(d.cfg.PageSize)
	d.stats.SimulatedReadTime += d.cfg.PageReadCost()
	out := make([]byte, d.cfg.PageSize)
	copy(out, d.pages[id])
	return out, nil
}

// Stats returns a snapshot of the disk activity counters.
func (d *Disk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the activity counters (allocation count is preserved).
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	alloc := d.stats.PagesAllocated
	d.stats = DiskStats{PagesAllocated: alloc}
}
