//go:build linux || darwin || freebsd || netbsd || openbsd

package storage

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared: the mapping observes
// the file as written, costs no anonymous memory, and survives closing the
// descriptor (and on these platforms, unlinking the path).
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}

// madvise forwards the access-pattern hint. The MADV_* values come from the
// platform syscall package, so each OS gets its own numbering.
func madvise(data []byte, a Advice) error {
	var hint int
	switch a {
	case AdviceRandom:
		hint = syscall.MADV_RANDOM
	case AdviceSequential:
		hint = syscall.MADV_SEQUENTIAL
	case AdviceWillNeed:
		hint = syscall.MADV_WILLNEED
	default:
		hint = syscall.MADV_NORMAL
	}
	return syscall.Madvise(data, hint)
}
