package storage

// Memory-mapped page device: the zero-copy end of the Pager spectrum. Where
// FileDisk preads each page into a fresh heap buffer (and the BufferPool
// copies it into a frame), MmapDisk maps the whole file once and hands out
// subslices of the mapping. The OS page cache becomes the buffer pool: a
// "read" is a pointer computation, a cold page is a major fault serviced by
// the kernel, and eviction is the kernel's problem — which is exactly what
// lets a dataset larger than RAM be served at all.
//
// MmapDisk is strictly read-only (segments are immutable once sealed), and
// only exists on platforms with a working mmap (see mmap_unix.go); everywhere
// else OpenMmapDisk returns ErrMmapUnsupported and callers fall back to the
// FileDisk pread path — same bytes, one copy slower.

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
)

// ViewPager is a Pager whose pages can be served as stable zero-copy views.
// A PageView slice aliases the pager's own storage (an mmap'd region): it is
// valid until the pager is closed, never moves, and must never be written.
// The BufferPool detects this interface and bypasses its frame cache
// entirely for such pagers — pin accounting degenerates to a no-op because
// the "frame" can never be evicted out from under a reader.
type ViewPager interface {
	Pager
	// PageView returns a zero-copy view of the page, aliasing the backing
	// mapping. The slice stays valid until Close.
	PageView(id PageID) ([]byte, error)
}

// Advice hints the kernel about the expected access pattern of a mapping
// (madvise). On platforms without madvise the hints are accepted and
// ignored.
type Advice int

const (
	// AdviceNormal resets to the default kernel readahead behavior.
	AdviceNormal Advice = iota
	// AdviceRandom disables readahead — right for point lookups and index
	// descents where prefetched neighbors would only pollute the page cache.
	AdviceRandom
	// AdviceSequential aggressively reads ahead — right for leaf-run scans
	// and whole-segment checksums.
	AdviceSequential
	// AdviceWillNeed asks the kernel to start faulting the range in now
	// (warmup before a latency-sensitive phase).
	AdviceWillNeed
)

// ErrMmapUnsupported is returned by OpenMmapDisk on platforms without mmap
// support. Callers treat it as "use the FileDisk pread fallback", not as a
// failure.
var ErrMmapUnsupported = errors.New("storage: mmap not supported on this platform")

// ErrReadOnlyPager is returned by Write on a read-only (mapped) pager.
var ErrReadOnlyPager = errors.New("storage: pager is read-only")

// MmapSupported reports whether this platform can serve files through
// MmapDisk. When false, every OpenMmapDisk fails with ErrMmapUnsupported and
// mapped-mode serving silently degrades to the pread path.
func MmapSupported() bool { return mmapSupported }

// MmapDisk is a read-only Pager over a memory-mapped file. The file size
// must be a whole number of pages (segment files are written page-aligned; a
// short file is a torn write). All methods are safe for concurrent use —
// the mapping is immutable after Open, so reads need no locking at all.
type MmapDisk struct {
	data     []byte
	pageSize int
	pages    int
	closed   atomic.Bool

	reads atomic.Int64
}

var _ ViewPager = (*MmapDisk)(nil)

// OpenMmapDisk maps the file at path read-only. pageSize <= 0 picks the 4 KB
// default. On platforms without mmap it returns ErrMmapUnsupported; callers
// should fall back to OpenFileDisk. The file descriptor is closed before
// returning — the mapping keeps the file contents alive on its own (on Unix,
// even across an unlink of the path, which is what makes segment GC safe
// while an old epoch still serves from the mapping).
func OpenMmapDisk(path string, pageSize int) (*MmapDisk, error) {
	if pageSize <= 0 {
		pageSize = 4096
	}
	if !mmapSupported {
		return nil, ErrMmapUnsupported
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size%int64(pageSize) != 0 {
		return nil, fmt.Errorf("storage: file size %d is not a multiple of page size %d (torn write)", size, pageSize)
	}
	var data []byte
	if size > 0 {
		data, err = mmapFile(f, size)
		if err != nil {
			return nil, fmt.Errorf("storage: mmap %s: %w", path, err)
		}
	}
	return &MmapDisk{data: data, pageSize: pageSize, pages: int(size / int64(pageSize))}, nil
}

// PageSize implements Pager.
func (d *MmapDisk) PageSize() int { return d.pageSize }

// NumPages implements Pager.
func (d *MmapDisk) NumPages() int { return d.pages }

// Allocate implements Pager. A mapped segment is sealed; growing it is a
// programming error, not an I/O condition.
func (d *MmapDisk) Allocate() PageID {
	panic("storage: Allocate on read-only MmapDisk")
}

// Write implements Pager; mapped segments are immutable.
func (d *MmapDisk) Write(PageID, []byte) error { return ErrReadOnlyPager }

// Read implements Pager. The returned slice aliases the mapping (zero copy);
// it must not be modified and stays valid until Close.
func (d *MmapDisk) Read(id PageID) ([]byte, error) {
	return d.PageView(id)
}

// PageView implements ViewPager: a zero-copy, stable view of the page.
func (d *MmapDisk) PageView(id PageID) ([]byte, error) {
	if id < 0 || int(id) >= d.pages {
		return nil, fmt.Errorf("%w: %d", ErrPageOutOfRange, id)
	}
	if d.closed.Load() {
		return nil, errors.New("storage: MmapDisk is closed")
	}
	d.reads.Add(1)
	off := int(id) * d.pageSize
	return d.data[off : off+d.pageSize : off+d.pageSize], nil
}

// Bytes returns the whole mapping (zero copy, read-only, valid until Close).
// The persist layer overlays segment structures directly on it.
func (d *MmapDisk) Bytes() []byte { return d.data }

// Advise passes an access-pattern hint for the whole mapping to the kernel.
// Best effort: errors are returned for observability but are never fatal.
func (d *MmapDisk) Advise(a Advice) error {
	if len(d.data) == 0 || d.closed.Load() {
		return nil
	}
	return madvise(d.data, a)
}

// Resident returns how many bytes of the mapping are currently resident in
// physical memory (mincore) — the closest portable proxy for "how many page
// faults would a full scan take". Platforms without mincore return 0, false.
func (d *MmapDisk) Resident() (int64, bool) {
	if len(d.data) == 0 || d.closed.Load() {
		return 0, mincoreSupported
	}
	return mincoreResident(d.data)
}

// Size returns the mapped length in bytes.
func (d *MmapDisk) Size() int64 { return int64(len(d.data)) }

// Stats returns a snapshot of the activity counters. Every read is zero-copy,
// so BytesRead counts bytes exposed, not bytes copied.
func (d *MmapDisk) Stats() DiskStats {
	r := d.reads.Load()
	return DiskStats{PageReads: r, BytesRead: r * int64(d.pageSize)}
}

// Close unmaps the file. Views handed out earlier become invalid; callers
// (epoch retirement) must ensure no reader holds one. Close is idempotent.
func (d *MmapDisk) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	if len(d.data) == 0 {
		return nil
	}
	data := d.data
	d.data = nil
	return munmapFile(data)
}
