package storage

// GetTracked behaves like Get but additionally reports whether the page was
// served from the pool (hit = true) or had to be read from disk.
func (p *BufferPool) GetTracked(id PageID) (data []byte, hit bool, err error) {
	before := p.Stats().Misses
	data, err = p.Get(id)
	if err != nil {
		return nil, false, err
	}
	return data, p.Stats().Misses == before, nil
}
