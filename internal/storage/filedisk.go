package storage

import (
	"fmt"
	"io"
	"os"
	"sync"

	"spatialsim/internal/faultinject"
)

// Failpoint names compiled into FileDisk's I/O paths. Disarmed (the
// production state) they cost one atomic load per operation; chaos tests arm
// them to make the page file fail, stall, or tear mid-write.
const (
	// FaultFileDiskWrite instruments page writes; it supports torn-write
	// injection (a random proper prefix lands before the error surfaces —
	// the crash-mid-write shape the recovery tests must tolerate).
	FaultFileDiskWrite = "storage.filedisk.write"
	// FaultFileDiskRead instruments page reads.
	FaultFileDiskRead = "storage.filedisk.read"
	// FaultFileDiskSync instruments Sync.
	FaultFileDiskSync = "storage.filedisk.sync"
)

// BackingFile is the slice of the *os.File surface FileDisk needs. It exists
// as a seam: production opens real files, while the crash-recovery torture
// tests substitute a file that starts failing after a randomized number of
// written bytes, simulating a crash at an arbitrary write offset.
type BackingFile interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Close() error
}

// FileDisk is a page-oriented view of a real file: the durable counterpart
// of the simulated Disk. Pages are written at offset id*PageSize, so the file
// layout is exactly the page-aligned image the buffer pool caches — a
// persisted epoch segment can be re-read page by page without any
// translation. All methods are safe for concurrent use.
type FileDisk struct {
	f        BackingFile
	pageSize int

	mu    sync.Mutex
	pages int
	stats DiskStats
}

// CreateFileDisk creates (truncating) the file at path and returns an empty
// FileDisk over it. pageSize <= 0 picks the 4 KB default.
func CreateFileDisk(path string, pageSize int) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return NewFileDisk(f, 0, pageSize)
}

// OpenFileDisk opens an existing page file for reading. The file size must be
// a whole number of pages (segments are written page-aligned; a short file is
// a torn write and the caller must treat it as corruption).
func OpenFileDisk(path string, pageSize int) (*FileDisk, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fd, err := NewFileDisk(readOnlyBacking{f}, st.Size(), pageSize)
	if err != nil {
		f.Close()
		return nil, err
	}
	return fd, nil
}

// NewFileDisk wraps an already-open backing file holding size bytes. It is
// the injection seam the torture tests use; production code goes through
// CreateFileDisk / OpenFileDisk.
func NewFileDisk(f BackingFile, size int64, pageSize int) (*FileDisk, error) {
	if pageSize <= 0 {
		pageSize = 4096
	}
	if size%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: file size %d is not a multiple of page size %d (torn write)", size, pageSize)
	}
	return &FileDisk{f: f, pageSize: pageSize, pages: int(size / int64(pageSize))}, nil
}

// readOnlyBacking adapts a read-only *os.File: writes fail loudly instead of
// silently corrupting a file opened for recovery.
type readOnlyBacking struct{ *os.File }

func (r readOnlyBacking) WriteAt([]byte, int64) (int, error) {
	return 0, fmt.Errorf("storage: file disk opened read-only")
}

// PageSize implements Pager.
func (d *FileDisk) PageSize() int { return d.pageSize }

// NumPages implements Pager.
func (d *FileDisk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages
}

// Allocate implements Pager. The page materializes in the file on its first
// Write; a Read before that returns zeros (ReadAt short reads are zero-filled
// up to the allocated extent).
func (d *FileDisk) Allocate() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(d.pages)
	d.pages++
	d.stats.PagesAllocated++
	return id
}

// Write implements Pager, placing the page at offset id*PageSize.
func (d *FileDisk) Write(id PageID, data []byte) error {
	if len(data) > d.pageSize {
		return fmt.Errorf("%w: %d > %d", ErrPageTooLarge, len(data), d.pageSize)
	}
	d.mu.Lock()
	if id < 0 || int(id) >= d.pages {
		d.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrPageOutOfRange, id)
	}
	d.stats.PageWrites++
	d.stats.BytesWritten += int64(d.pageSize)
	d.mu.Unlock()

	// Full pages write straight through (the snapshot path streams exact
	// page slices); only a short chunk needs zero-padding to page size.
	page := data
	if len(data) < d.pageSize {
		page = make([]byte, d.pageSize)
		copy(page, data)
	}
	if n, ferr := faultinject.CheckWrite(FaultFileDiskWrite, len(page)); ferr != nil {
		if n > 0 {
			// Torn write: land the prefix, then fail — the caller sees the
			// error but the file holds partial bytes, like a crash mid-write.
			d.f.WriteAt(page[:n], int64(id)*int64(d.pageSize))
		}
		return ferr
	}
	_, err := d.f.WriteAt(page, int64(id)*int64(d.pageSize))
	return err
}

// Read implements Pager.
func (d *FileDisk) Read(id PageID) ([]byte, error) {
	d.mu.Lock()
	if id < 0 || int(id) >= d.pages {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %d", ErrPageOutOfRange, id)
	}
	d.stats.PageReads++
	d.stats.BytesRead += int64(d.pageSize)
	d.mu.Unlock()

	if err := faultinject.Hit(FaultFileDiskRead); err != nil {
		return nil, err
	}
	out := make([]byte, d.pageSize)
	n, err := d.f.ReadAt(out, int64(id)*int64(d.pageSize))
	if err == io.EOF && n >= 0 {
		// Allocated but never written: the tail of the file does not exist
		// yet, and absent bytes read as zeros.
		err = nil
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Sync flushes written pages to stable storage.
func (d *FileDisk) Sync() error {
	if err := faultinject.Hit(FaultFileDiskSync); err != nil {
		return err
	}
	return d.f.Sync()
}

// Close closes the backing file.
func (d *FileDisk) Close() error { return d.f.Close() }

// Stats returns a snapshot of the activity counters. SimulatedReadTime stays
// zero: FileDisk performs real I/O and models nothing.
func (d *FileDisk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
