package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writePageFile writes n pages where byte 0 of page i is i (mod 256).
func writePageFile(t *testing.T, pages, pageSize int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seg.bin")
	img := make([]byte, pages*pageSize)
	for i := 0; i < pages; i++ {
		img[i*pageSize] = byte(i)
		img[i*pageSize+1] = 0xAB
	}
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMmapDiskMatchesFileDisk(t *testing.T) {
	if !MmapSupported() {
		t.Skip("mmap not supported on this platform")
	}
	const pages, pageSize = 16, 4096
	path := writePageFile(t, pages, pageSize)

	md, err := OpenMmapDisk(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer md.Close()
	fd, err := OpenFileDisk(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()

	if md.NumPages() != pages || md.PageSize() != pageSize {
		t.Fatalf("geometry: %d pages x %d, want %d x %d", md.NumPages(), md.PageSize(), pages, pageSize)
	}
	for i := 0; i < pages; i++ {
		got, err := md.Read(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		want, err := fd.Read(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d: mapped bytes differ from pread bytes", i)
		}
	}
	if int64(len(md.Bytes())) != md.Size() || md.Size() != pages*pageSize {
		t.Fatalf("Bytes/Size mismatch: %d vs %d", len(md.Bytes()), md.Size())
	}
}

func TestMmapDiskViewsAliasMapping(t *testing.T) {
	if !MmapSupported() {
		t.Skip("mmap not supported on this platform")
	}
	const pages, pageSize = 4, 4096
	path := writePageFile(t, pages, pageSize)
	md, err := OpenMmapDisk(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer md.Close()

	v1, err := md.PageView(2)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := md.PageView(2)
	if err != nil {
		t.Fatal(err)
	}
	if &v1[0] != &v2[0] {
		t.Fatal("PageView returned distinct backing arrays; views must alias the mapping")
	}
	all := md.Bytes()
	if &v1[0] != &all[2*pageSize] {
		t.Fatal("PageView does not alias Bytes() at the page offset")
	}
}

func TestMmapDiskReadOnlyAndBounds(t *testing.T) {
	if !MmapSupported() {
		t.Skip("mmap not supported on this platform")
	}
	path := writePageFile(t, 2, 4096)
	md, err := OpenMmapDisk(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer md.Close()

	if err := md.Write(0, []byte{1}); !errors.Is(err, ErrReadOnlyPager) {
		t.Fatalf("Write = %v, want ErrReadOnlyPager", err)
	}
	if _, err := md.Read(2); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("Read(2) = %v, want ErrPageOutOfRange", err)
	}
	if _, err := md.Read(-1); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("Read(-1) = %v, want ErrPageOutOfRange", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Allocate on MmapDisk should panic")
			}
		}()
		md.Allocate()
	}()
}

func TestMmapDiskTornFile(t *testing.T) {
	if !MmapSupported() {
		t.Skip("mmap not supported on this platform")
	}
	path := filepath.Join(t.TempDir(), "torn.bin")
	if err := os.WriteFile(path, make([]byte, 4096+17), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMmapDisk(path, 4096); err == nil {
		t.Fatal("OpenMmapDisk of a torn (non-page-multiple) file should fail")
	}
}

func TestMmapDiskEmptyFile(t *testing.T) {
	if !MmapSupported() {
		t.Skip("mmap not supported on this platform")
	}
	path := filepath.Join(t.TempDir(), "empty.bin")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	md, err := OpenMmapDisk(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if md.NumPages() != 0 {
		t.Fatalf("empty file has %d pages, want 0", md.NumPages())
	}
	if err := md.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMmapDiskAdviseAndResident(t *testing.T) {
	if !MmapSupported() {
		t.Skip("mmap not supported on this platform")
	}
	path := writePageFile(t, 8, 4096)
	md, err := OpenMmapDisk(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer md.Close()
	for _, a := range []Advice{AdviceRandom, AdviceSequential, AdviceWillNeed, AdviceNormal} {
		if err := md.Advise(a); err != nil {
			t.Fatalf("Advise(%d): %v", a, err)
		}
	}
	// Touch every page, then Resident should see at least one page in core
	// (best effort: only asserted where mincore exists).
	for i := 0; i < md.NumPages(); i++ {
		if _, err := md.Read(PageID(i)); err != nil {
			t.Fatal(err)
		}
		_ = md.Bytes()[i*4096]
	}
	if res, ok := md.Resident(); ok && res <= 0 {
		t.Fatalf("Resident() = %d after touching every page, want > 0", res)
	}
}

func TestMmapDiskCloseIdempotent(t *testing.T) {
	if !MmapSupported() {
		t.Skip("mmap not supported on this platform")
	}
	path := writePageFile(t, 2, 4096)
	md, err := OpenMmapDisk(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := md.Close(); err != nil {
		t.Fatal(err)
	}
	if err := md.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := md.PageView(0); err == nil {
		t.Fatal("PageView after Close should fail")
	}
}

func TestMmapDiskSurvivesUnlink(t *testing.T) {
	if !MmapSupported() {
		t.Skip("mmap not supported on this platform")
	}
	// Segment GC deletes files that a still-serving old epoch may have
	// mapped; the inode must stay readable until munmap.
	path := writePageFile(t, 2, 4096)
	md, err := OpenMmapDisk(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer md.Close()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	got, err := md.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 0xAB {
		t.Fatalf("unexpected page contents after unlink: % x", got[:2])
	}
}
