package storage

// Concurrent coverage for the BufferPool: readers pinning pages (Get),
// evictions forced by a capacity smaller than the working set, Clear wiping
// the pool mid-flight, and stats snapshots — all at once, so `go test -race`
// patrols the lock discipline that the single-threaded tests never stress.
// The suite runs the same churn against every pool shape: the classic
// single-shard pool, the sharded large pool, and (where the platform has
// mmap) the lock-free zero-copy pool.

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// churnPool hammers the pool from `workers` goroutines with Gets, pins,
// Clears and stats traffic, validating page contents on every read.
func churnPool(t *testing.T, pool *BufferPool, ids []PageID, workers, rounds int) {
	t.Helper()
	pages := len(ids)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n := (w*31 + r) % pages
				id := ids[n]
				switch r % 7 {
				case 5:
					// Pinned read: the slice must stay this page across a
					// concurrent Clear.
					pool.Pin(id)
					data, err := pool.Get(id)
					if err != nil {
						t.Errorf("Get(%v): %v", id, err)
						pool.Unpin(id)
						return
					}
					if data[0] != byte(n) {
						t.Errorf("pinned Get(%v): wrong page contents %d, want %d", id, data[0], n)
					}
					pool.Unpin(id)
				default:
					data, err := pool.Get(id)
					if err != nil {
						t.Errorf("Get(%v): %v", id, err)
						return
					}
					if data[0] != byte(n) {
						t.Errorf("Get(%v): wrong page contents %d, want %d", id, data[0], n)
						return
					}
				}
				switch r % 50 {
				case 17:
					pool.Clear()
				case 33:
					_ = pool.Stats()
				case 41:
					pool.ResetStats()
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestBufferPoolConcurrentGetEvictClear(t *testing.T) {
	const (
		pages    = 64
		capacity = 8 // far below the working set, so evictions are constant
		workers  = 8
		rounds   = 300
	)
	disk := NewDisk(DiskConfig{PageSize: 128})
	ids := make([]PageID, pages)
	for i := range ids {
		id := disk.Allocate()
		buf := make([]byte, 128)
		buf[0] = byte(i)
		if err := disk.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	pool := NewBufferPool(disk, capacity)
	if len(pool.shards) != 1 {
		t.Fatalf("capacity %d pool should be single-shard, got %d shards", capacity, len(pool.shards))
	}

	churnPool(t, pool, ids, workers, rounds)

	st := pool.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
	// The pool must have stayed within capacity through the churn.
	cached, coherent := pool.cached()
	if cached > capacity || !coherent {
		t.Fatalf("pool invariants broken: %d cached (capacity %d), coherent=%v",
			cached, capacity, coherent)
	}
}

func TestBufferPoolShardedConcurrent(t *testing.T) {
	const (
		pages    = 512
		capacity = 128 // >= shardThreshold, so the pool shards
		workers  = 8
		rounds   = 400
	)
	disk := NewDisk(DiskConfig{PageSize: 128})
	ids := make([]PageID, pages)
	for i := range ids {
		id := disk.Allocate()
		buf := make([]byte, 128)
		buf[0] = byte(i)
		if err := disk.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	pool := NewBufferPool(disk, capacity)
	if len(pool.shards) != poolShardCount {
		t.Fatalf("capacity %d pool should have %d shards, got %d", capacity, poolShardCount, len(pool.shards))
	}
	// Shard capacities must sum to the configured capacity.
	var sum int
	for i := range pool.shards {
		sum += pool.shards[i].capacity
	}
	if sum != capacity {
		t.Fatalf("shard capacities sum to %d, want %d", sum, capacity)
	}

	churnPool(t, pool, ids, workers, rounds)

	st := pool.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
	cached, coherent := pool.cached()
	if cached > capacity || !coherent {
		t.Fatalf("sharded pool invariants broken: %d cached (capacity %d), coherent=%v",
			cached, capacity, coherent)
	}
}

func TestBufferPoolZeroCopyConcurrent(t *testing.T) {
	if !MmapSupported() {
		t.Skip("mmap not supported on this platform")
	}
	const (
		pages    = 64
		pageSize = 4096
		workers  = 8
		rounds   = 300
	)
	path := filepath.Join(t.TempDir(), "pages.bin")
	img := make([]byte, pages*pageSize)
	for i := 0; i < pages; i++ {
		img[i*pageSize] = byte(i)
	}
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenMmapDisk(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	pool := NewBufferPool(disk, 8)
	if !pool.ZeroCopy() {
		t.Fatal("pool over MmapDisk should be zero-copy")
	}
	ids := make([]PageID, pages)
	for i := range ids {
		ids[i] = PageID(i)
	}

	churnPool(t, pool, ids, workers, rounds)

	st := pool.Stats()
	if st.ZeroCopy == 0 {
		t.Fatal("no zero-copy lookups recorded")
	}
	if st.Misses != 0 {
		t.Fatalf("zero-copy pool recorded %d misses; every view should bypass the pager read path", st.Misses)
	}
	if cached, _ := pool.cached(); cached != 0 {
		t.Fatalf("zero-copy pool cached %d frames; views must not be copied into frames", cached)
	}
	// Passthroughs are not cache hits: the frame cache saw no traffic at all,
	// so HitRate has nothing to report while ZeroCopyRate is total.
	if st.HitRate() != 0 {
		t.Fatalf("zero-copy HitRate = %v, want 0 (no frame-cache traffic)", st.HitRate())
	}
	if st.ZeroCopyRate() != 1 {
		t.Fatalf("ZeroCopyRate = %v, want 1", st.ZeroCopyRate())
	}
}
