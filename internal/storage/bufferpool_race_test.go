package storage

// Concurrent coverage for the BufferPool: readers pinning pages (Get),
// evictions forced by a capacity smaller than the working set, Clear wiping
// the pool mid-flight, and stats snapshots — all at once, so `go test -race`
// patrols the lock discipline that the single-threaded tests never stress.

import (
	"sync"
	"testing"
)

func TestBufferPoolConcurrentGetEvictClear(t *testing.T) {
	const (
		pages    = 64
		capacity = 8 // far below the working set, so evictions are constant
		workers  = 8
		rounds   = 300
	)
	disk := NewDisk(DiskConfig{PageSize: 128})
	ids := make([]PageID, pages)
	for i := range ids {
		id := disk.Allocate()
		buf := make([]byte, 128)
		buf[0] = byte(i)
		if err := disk.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	pool := NewBufferPool(disk, capacity)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				id := ids[(w*31+r)%pages]
				data, err := pool.Get(id)
				if err != nil {
					t.Errorf("Get(%v): %v", id, err)
					return
				}
				if data[0] != byte((w*31+r)%pages) {
					t.Errorf("Get(%v): wrong page contents %d", id, data[0])
					return
				}
				switch r % 50 {
				case 17:
					pool.Clear()
				case 33:
					_ = pool.Stats()
				case 41:
					pool.ResetStats()
				}
			}
		}(w)
	}
	wg.Wait()

	st := pool.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
	// The pool must have stayed within capacity through the churn.
	pool.mu.Lock()
	cached := len(pool.data)
	listLen := pool.lru.Len()
	indexLen := len(pool.index)
	pool.mu.Unlock()
	if cached > capacity || listLen != cached || indexLen != cached {
		t.Fatalf("pool invariants broken: %d cached, %d in lru, %d indexed (capacity %d)",
			cached, listLen, indexLen, capacity)
	}
}
