package storage

// Pager is the page-device contract shared by every on-disk layer in
// spatialsim: the latency-modelling simulated Disk that the Figure 2
// experiment measures, and the real-file FileDisk that the durable epoch
// store (internal/persist) writes its page-aligned segment files through.
// Code written against Pager — most importantly the BufferPool — serves both
// worlds unchanged, which is what lets the persisted epoch format be both
// measured under the paper's cold-cache I/O model and actually recovered
// from a real file after a crash.
//
// Page ids are dense: Allocate hands out 0, 1, 2, ... in order, and Read or
// Write of an id that was never allocated is an error.
type Pager interface {
	// PageSize returns the size of one page in bytes.
	PageSize() int
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Allocate reserves a new zeroed page and returns its id.
	Allocate() PageID
	// Read returns the contents of the page (always PageSize bytes).
	Read(id PageID) ([]byte, error)
	// Write stores data into the page; data shorter than a page leaves the
	// remainder zeroed.
	Write(id PageID, data []byte) error
}

var _ Pager = (*Disk)(nil)
var _ Pager = (*FileDisk)(nil)
