package storage

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDiskAllocateWriteRead(t *testing.T) {
	d := NewDisk(DiskConfig{PageSize: 128})
	if d.PageSize() != 128 {
		t.Fatalf("PageSize = %d", d.PageSize())
	}
	id := d.Allocate()
	if d.NumPages() != 1 {
		t.Fatalf("NumPages = %d", d.NumPages())
	}
	payload := []byte("hello simulated disk")
	if err := d.Write(id, payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := d.Read(id)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != 128 {
		t.Fatalf("Read returned %d bytes", len(got))
	}
	if !bytes.Equal(got[:len(payload)], payload) {
		t.Fatalf("Read data mismatch")
	}
	// Remainder must be zeroed.
	for _, b := range got[len(payload):] {
		if b != 0 {
			t.Fatal("page remainder not zeroed")
		}
	}
	// Overwrite with shorter data zeroes the tail.
	if err := d.Write(id, []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, _ = d.Read(id)
	if got[0] != 'x' || got[1] != 0 {
		t.Fatal("overwrite did not zero remainder")
	}
}

func TestDiskErrors(t *testing.T) {
	d := NewDisk(DiskConfig{PageSize: 64})
	if err := d.Write(0, []byte("x")); !errors.Is(err, ErrPageOutOfRange) {
		t.Errorf("Write to unallocated page: %v", err)
	}
	if _, err := d.Read(5); !errors.Is(err, ErrPageOutOfRange) {
		t.Errorf("Read of unallocated page: %v", err)
	}
	if _, err := d.Read(-1); !errors.Is(err, ErrPageOutOfRange) {
		t.Errorf("Read of negative page: %v", err)
	}
	id := d.Allocate()
	if err := d.Write(id, make([]byte, 65)); !errors.Is(err, ErrPageTooLarge) {
		t.Errorf("oversized Write: %v", err)
	}
}

func TestDiskStatsAndLatencyModel(t *testing.T) {
	cfg := DiskConfig{PageSize: 4096, SeekLatency: 5 * time.Millisecond, TransferRate: 4096 * 1000}
	d := NewDisk(cfg)
	id := d.Allocate()
	for i := 0; i < 10; i++ {
		if _, err := d.Read(id); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.PageReads != 10 || st.BytesRead != 10*4096 {
		t.Fatalf("stats = %+v", st)
	}
	// Each read costs 5ms seek + 1ms transfer (4096 bytes at 4096*1000 B/s).
	want := 10 * (5*time.Millisecond + time.Millisecond)
	if st.SimulatedReadTime != want {
		t.Fatalf("SimulatedReadTime = %v, want %v", st.SimulatedReadTime, want)
	}
	d.ResetStats()
	st = d.Stats()
	if st.PageReads != 0 || st.PagesAllocated != 1 {
		t.Fatalf("after reset: %+v", st)
	}
}

func TestDiskDefaults(t *testing.T) {
	d := NewDisk(DiskConfig{})
	if d.PageSize() != 4096 {
		t.Errorf("default page size = %d", d.PageSize())
	}
	cost := d.Config().PageReadCost()
	if cost < 5*time.Millisecond || cost > 6*time.Millisecond {
		t.Errorf("default page read cost = %v", cost)
	}
	def := DefaultDiskConfig()
	if def.PageSize != 4096 || def.SeekLatency != 5*time.Millisecond {
		t.Errorf("DefaultDiskConfig = %+v", def)
	}
}

func TestDiskConcurrentAccess(t *testing.T) {
	d := NewDisk(DiskConfig{PageSize: 64})
	ids := make([]PageID, 16)
	for i := range ids {
		ids[i] = d.Allocate()
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				id := ids[(i+j)%len(ids)]
				_ = d.Write(id, []byte{byte(i)})
				if _, err := d.Read(id); err != nil {
					t.Errorf("Read: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if d.Stats().PageReads != 800 {
		t.Fatalf("PageReads = %d", d.Stats().PageReads)
	}
}

func TestBufferPoolHitsAndMisses(t *testing.T) {
	d := NewDisk(DiskConfig{PageSize: 64})
	ids := make([]PageID, 4)
	for i := range ids {
		ids[i] = d.Allocate()
		if err := d.Write(ids[i], []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	p := NewBufferPool(d, 8)
	// First access: miss; second: hit.
	if data, err := p.Get(ids[0]); err != nil || data[0] != 1 {
		t.Fatalf("Get: %v %v", data, err)
	}
	if data, err := p.Get(ids[0]); err != nil || data[0] != 1 {
		t.Fatalf("Get: %v %v", data, err)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", st.HitRate())
	}
	// Hits do not touch the disk.
	if d.Stats().PageReads != 1 {
		t.Fatalf("disk reads = %d", d.Stats().PageReads)
	}
	// Clear forces a re-read (cold cache).
	p.Clear()
	if _, err := p.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	if d.Stats().PageReads != 2 {
		t.Fatalf("disk reads after Clear = %d", d.Stats().PageReads)
	}
	p.ResetStats()
	if p.Stats().Hits != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
	if p.Capacity() != 8 {
		t.Fatalf("Capacity = %d", p.Capacity())
	}
}

func TestBufferPoolEviction(t *testing.T) {
	d := NewDisk(DiskConfig{PageSize: 64})
	ids := make([]PageID, 5)
	for i := range ids {
		ids[i] = d.Allocate()
	}
	p := NewBufferPool(d, 2)
	for _, id := range ids {
		if _, err := p.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Misses != 5 || st.Evictions != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// The two most recently used pages are cached.
	before := d.Stats().PageReads
	if _, err := p.Get(ids[4]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(ids[3]); err != nil {
		t.Fatal(err)
	}
	if d.Stats().PageReads != before {
		t.Fatal("recently used pages should be cache hits")
	}
	// The least recently used page was evicted.
	if _, err := p.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	if d.Stats().PageReads != before+1 {
		t.Fatal("evicted page should be a miss")
	}
}

func TestBufferPoolZeroCapacity(t *testing.T) {
	d := NewDisk(DiskConfig{PageSize: 64})
	id := d.Allocate()
	p := NewBufferPool(d, 0)
	for i := 0; i < 3; i++ {
		if _, err := p.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	if d.Stats().PageReads != 3 {
		t.Fatalf("zero-capacity pool should not cache; reads = %d", d.Stats().PageReads)
	}
	if p.Stats().Hits != 0 {
		t.Fatal("zero-capacity pool reported hits")
	}
}

func TestBufferPoolErrorPropagation(t *testing.T) {
	d := NewDisk(DiskConfig{PageSize: 64})
	p := NewBufferPool(d, 2)
	if _, err := p.Get(42); err == nil {
		t.Fatal("expected error for unallocated page")
	}
}
