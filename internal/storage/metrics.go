package storage

import "spatialsim/internal/obs"

// RegisterPoolMetrics exposes one buffer pool's counters on reg under
// spatial_pool_<name>_*. Real frame-cache hits and zero-copy passthroughs are
// separate series (and separate rates) — a dashboard that watched the old
// blended hit rate could not tell "the cache is working" from "the cache is
// bypassed", which are opposite capacity-planning signals.
func RegisterPoolMetrics(reg *obs.Registry, name string, p *BufferPool) {
	if reg == nil || p == nil {
		return
	}
	prefix := "spatial_pool_" + name + "_"
	reg.CounterFunc(prefix+"hits_total", func() float64 { return float64(p.Stats().Hits) })
	reg.CounterFunc(prefix+"misses_total", func() float64 { return float64(p.Stats().Misses) })
	reg.CounterFunc(prefix+"evictions_total", func() float64 { return float64(p.Stats().Evictions) })
	reg.CounterFunc(prefix+"zero_copy_total", func() float64 { return float64(p.Stats().ZeroCopy) })
	reg.Gauge(prefix+"hit_rate", func() float64 { return p.Stats().HitRate() })
	reg.Gauge(prefix+"zero_copy_rate", func() float64 { return p.Stats().ZeroCopyRate() })
}
