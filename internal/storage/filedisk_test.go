package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFileDiskRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.bin")
	fd, err := CreateFileDisk(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	a := fd.Allocate()
	b := fd.Allocate()
	if a != 0 || b != 1 {
		t.Fatalf("page ids %d, %d", a, b)
	}
	if err := fd.Write(b, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// Allocated-but-never-written pages read as zeros (the file may not
	// extend that far yet).
	data, err := fd.Read(a)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if v != 0 {
			t.Fatalf("unwritten page byte %d = %d", i, v)
		}
	}
	data, err = fd.Read(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:5]) != "hello" || data[5] != 0 {
		t.Fatalf("page contents %q", data[:8])
	}
	if err := fd.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := fd.Read(PageID(2)); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("read past end: %v", err)
	}
	if err := fd.Write(a, make([]byte, 257)); !errors.Is(err, ErrPageTooLarge) {
		t.Fatalf("oversized write: %v", err)
	}
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen read-only: same pages, writes rejected.
	ro, err := OpenFileDisk(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if ro.NumPages() != 2 {
		t.Fatalf("reopened pages = %d", ro.NumPages())
	}
	data, err = ro.Read(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:5]) != "hello" {
		t.Fatalf("reopened page contents %q", data[:8])
	}
	if err := ro.Write(a, []byte("x")); err == nil {
		t.Fatal("write accepted on read-only file disk")
	}
	if st := ro.Stats(); st.PageReads == 0 || st.SimulatedReadTime != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestOpenFileDiskRejectsTornFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.bin")
	fd, err := CreateFileDisk(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	fd.Allocate()
	if err := fd.Write(0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	fd.Close()
	// 128-byte pages, but we truncate the file to 100 bytes: a torn write.
	if err := os.Truncate(path, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileDisk(path, 128); err == nil {
		t.Fatal("torn file accepted")
	}
}

func TestBufferPoolOverFileDisk(t *testing.T) {
	fd, err := CreateFileDisk(filepath.Join(t.TempDir(), "pool.bin"), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	for i := 0; i < 4; i++ {
		id := fd.Allocate()
		if err := fd.Write(id, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	pool := NewBufferPool(fd, 2)
	for round := 0; round < 2; round++ {
		for i := 0; i < 4; i++ {
			data, err := pool.Get(PageID(i))
			if err != nil {
				t.Fatal(err)
			}
			if data[0] != byte(i+1) {
				t.Fatalf("page %d contents %d", i, data[0])
			}
		}
	}
	if st := pool.Stats(); st.Misses == 0 || st.Evictions == 0 {
		t.Fatalf("pool never exercised the file disk: %+v", st)
	}
}
