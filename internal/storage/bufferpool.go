package storage

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// BufferPoolStats reports hit/miss counts of a buffer pool. ZeroCopy counts
// lookups answered straight from a mapped pager's own bytes (no frame copy,
// no LRU traffic). Zero-copy passthroughs are deliberately NOT hits: a hit
// means the frame cache earned its memory, a passthrough means the cache was
// bypassed entirely — folding them together made a tiny pool over a mapped
// segment report a perfect hit rate while caching nothing.
type BufferPoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	ZeroCopy  int64
}

// HitRate returns the fraction of frame-cache lookups served from a cached
// frame: Hits / (Hits + Misses). Zero-copy passthroughs never enter the frame
// cache and are excluded; track them with ZeroCopyRate.
func (s BufferPoolStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// ZeroCopyRate returns the fraction of all lookups served straight from a
// mapped view, bypassing the frame cache.
func (s BufferPoolStats) ZeroCopyRate() float64 {
	total := s.Hits + s.Misses + s.ZeroCopy
	if total == 0 {
		return 0
	}
	return float64(s.ZeroCopy) / float64(total)
}

// BufferPool caches pages of a Pager with an LRU replacement policy. The
// paper's experiments run with a cold cache that is cleared between queries;
// Clear provides exactly that. Callers that hold a page across other pool
// operations (the paged segment readers assembling a record that straddles
// pages) pin it first: a pinned page is never evicted — not by capacity
// pressure, not by Evict, not by Clear — until its last pin is dropped.
//
// Two fast paths sit in front of the classic frame cache:
//
//   - Zero copy: when the pager implements ViewPager (MmapDisk), Get returns
//     the mapping's own bytes. No frame is allocated, no lock is taken, and
//     pins are satisfied trivially — the mapping never moves and never gets
//     evicted, so the pin contract ("the slice stays this page") holds by
//     construction. The OS page cache becomes the real buffer pool and the
//     configured capacity stops mattering for those pages.
//   - Sharding: large pools split the frame cache into independently locked
//     shards (pages hash to a shard by id), so concurrent readers touching
//     different pages stop serializing on one mutex. Small pools (below
//     shardThreshold frames) stay single-sharded, preserving exact global-LRU
//     eviction order for the paper's cold-cache experiments.
type BufferPool struct {
	pager    Pager
	capacity int
	view     ViewPager // non-nil when pager serves stable zero-copy views
	zcHits   atomic.Int64

	shards []poolShard
	mask   uint32
}

// poolShard is one independently locked slice of the frame cache. Each shard
// runs the full pin-aware LRU protocol over its subset of the page-id space.
type poolShard struct {
	capacity int

	mu    sync.Mutex
	lru   *list.List // of PageID, front = most recently used
	index map[PageID]*list.Element
	data  map[PageID][]byte
	pins  map[PageID]int
	stats BufferPoolStats
}

// shardThreshold is the capacity at which the pool starts sharding. Below it
// a single shard preserves exact global LRU semantics (the deterministic
// eviction-order tests and the cold-cache experiment protocol rely on them);
// at or above it, lock contention dominates and approximate per-shard LRU is
// the right trade.
const shardThreshold = 64

// poolShardCount is how many shards a sharded pool uses (power of two).
const poolShardCount = 8

// NewBufferPool returns a pool caching up to capacity pages of the pager.
// A capacity of 0 disables caching entirely (every Get goes to the pager).
func NewBufferPool(pager Pager, capacity int) *BufferPool {
	n := 1
	if capacity >= shardThreshold {
		n = poolShardCount
	}
	p := &BufferPool{
		pager:    pager,
		capacity: capacity,
		shards:   make([]poolShard, n),
		mask:     uint32(n - 1),
	}
	if v, ok := pager.(ViewPager); ok {
		p.view = v
	}
	base, extra := capacity/n, capacity%n
	for i := range p.shards {
		sh := &p.shards[i]
		sh.capacity = base
		if i < extra {
			sh.capacity++
		}
		sh.lru = list.New()
		sh.index = make(map[PageID]*list.Element)
		sh.data = make(map[PageID][]byte)
		sh.pins = make(map[PageID]int)
	}
	return p
}

// Capacity returns the configured capacity in pages.
func (p *BufferPool) Capacity() int { return p.capacity }

// ZeroCopy reports whether lookups bypass the frame cache entirely and serve
// the pager's own mapped bytes.
func (p *BufferPool) ZeroCopy() bool { return p.view != nil }

// shard maps a page id to its owning shard. The multiplier spreads the dense
// sequential ids persist produces across shards instead of striping runs of
// adjacent pages onto one.
func (p *BufferPool) shard(id PageID) *poolShard {
	return &p.shards[(uint32(id)*2654435761)>>16&p.mask]
}

// Get returns the contents of the page, reading it from the pager on a miss.
// The returned slice is owned by the pool and must not be modified; callers
// that need it to stay coherent across further pool traffic must Pin the page
// for the duration. On a zero-copy pool the slice is the mapping itself and
// is valid until the mapping is closed.
func (p *BufferPool) Get(id PageID) ([]byte, error) {
	if p.view != nil {
		data, err := p.view.PageView(id)
		if err != nil {
			return nil, err
		}
		p.zcHits.Add(1)
		return data, nil
	}
	sh := p.shard(id)
	sh.mu.Lock()
	if el, ok := sh.index[id]; ok {
		sh.lru.MoveToFront(el)
		sh.stats.Hits++
		data := sh.data[id]
		sh.mu.Unlock()
		return data, nil
	}
	sh.stats.Misses++
	sh.mu.Unlock()

	data, err := p.pager.Read(id)
	if err != nil {
		return nil, err
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.capacity > 0 || sh.pins[id] > 0 {
		// A pinned page is cached even by a zero-capacity (cold-cache) pool:
		// the pin is a promise that the caller's slice stays the page, and
		// that promise must survive a concurrent Get of the same id.
		if _, ok := sh.index[id]; !ok {
			sh.index[id] = sh.lru.PushFront(id)
			sh.data[id] = data
			sh.evictOverCapacityLocked()
		} else {
			// Raced with another miss of the same id: keep the resident copy
			// so every caller that pinned it observes one stable slice.
			data = sh.data[id]
		}
	}
	return data, nil
}

// Pin marks the page as unevictable until a matching Unpin. Pinning a page
// that is not (yet) resident is allowed — the pin takes effect the moment a
// Get brings it in, which is exactly the interleaving a concurrent
// Get/Evict of the same id produces. On a zero-copy pool pins are free:
// mapped bytes cannot be evicted or move, so the pin promise holds without
// bookkeeping.
func (p *BufferPool) Pin(id PageID) {
	if p.view != nil {
		return
	}
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.pins[id]++
}

// Unpin drops one pin. It panics on a page that was not pinned: an unbalanced
// Unpin is a lifecycle bug that would otherwise surface as an impossible
// eviction much later. Dropping the last pin re-runs the capacity scan, so a
// page that was admitted only because it was pinned (capacity-0 cold-cache
// pools) or kept the pool in overflow leaves immediately rather than
// lingering as a phantom cache hit.
func (p *BufferPool) Unpin(id PageID) {
	if p.view != nil {
		return
	}
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n, ok := sh.pins[id]
	if !ok {
		panic("storage: Unpin of unpinned page")
	}
	if n > 1 {
		sh.pins[id] = n - 1
		return
	}
	delete(sh.pins, id)
	if sh.lru.Len() > sh.capacity {
		sh.evictOverCapacityLocked()
	}
}

// Evict drops the page from the cache and reports whether it is gone. A
// pinned page is not evicted (returns false); an absent page is trivially
// gone (returns true). Zero-copy pages live in the OS page cache, not the
// pool, so they are trivially gone too.
func (p *BufferPool) Evict(id PageID) bool {
	if p.view != nil {
		return true
	}
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.pins[id] > 0 {
		return false
	}
	el, ok := sh.index[id]
	if !ok {
		return true
	}
	sh.removeLocked(el, id)
	return true
}

// evictOverCapacityLocked brings the shard back under capacity, scanning from
// the LRU end and skipping pinned pages. If every resident page is pinned the
// shard runs over capacity rather than evicting a page someone holds — the
// overflow drains as pins drop and later insertions re-run the scan.
func (sh *poolShard) evictOverCapacityLocked() {
	over := sh.lru.Len() - sh.capacity
	if sh.capacity <= 0 {
		// capacity 0 admits pages only for their pin's lifetime; everything
		// unpinned is surplus.
		over = sh.lru.Len()
	}
	for el := sh.lru.Back(); el != nil && over > 0; {
		prev := el.Prev()
		id := el.Value.(PageID)
		if sh.pins[id] == 0 {
			sh.removeLocked(el, id)
			sh.stats.Evictions++
			over--
		}
		el = prev
	}
}

// removeLocked drops one resident page. Caller holds sh.mu.
func (sh *poolShard) removeLocked(el *list.Element, id PageID) {
	sh.lru.Remove(el)
	delete(sh.index, id)
	delete(sh.data, id)
}

// Clear drops every unpinned cached page, emulating the paper's cold-cache
// protocol ("the cache is cleaned between any two queries"). Pinned pages
// stay resident: a cold-cache sweep must not invalidate a page a reader is
// holding mid-record.
func (p *BufferPool) Clear() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Back(); el != nil; {
			prev := el.Prev()
			id := el.Value.(PageID)
			if sh.pins[id] == 0 {
				sh.removeLocked(el, id)
			}
			el = prev
		}
		sh.mu.Unlock()
	}
}

// Stats returns a snapshot of the hit/miss counters, summed across shards.
func (p *BufferPool) Stats() BufferPoolStats {
	var out BufferPoolStats
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		out.Hits += sh.stats.Hits
		out.Misses += sh.stats.Misses
		out.Evictions += sh.stats.Evictions
		sh.mu.Unlock()
	}
	out.ZeroCopy = p.zcHits.Load()
	return out
}

// ResetStats zeroes the hit/miss counters without dropping cached pages.
func (p *BufferPool) ResetStats() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.stats = BufferPoolStats{}
		sh.mu.Unlock()
	}
	p.zcHits.Store(0)
}

// resident reports whether the page is currently cached (test hook).
func (p *BufferPool) resident(id PageID) bool {
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.index[id]
	return ok
}

// cached returns the total resident page count and whether every shard's
// internal structures agree (test hook for the -race invariant checks).
func (p *BufferPool) cached() (n int, coherent bool) {
	coherent = true
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		d, l, ix := len(sh.data), sh.lru.Len(), len(sh.index)
		sh.mu.Unlock()
		if d != l || ix != d {
			coherent = false
		}
		n += d
	}
	return n, coherent
}
