package storage

import (
	"container/list"
	"sync"
)

// BufferPoolStats reports hit/miss counts of a buffer pool.
type BufferPoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRate returns the fraction of lookups served from the pool.
func (s BufferPoolStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// BufferPool caches disk pages with an LRU replacement policy. The paper's
// experiments run with a cold cache that is cleared between queries; Clear
// provides exactly that.
type BufferPool struct {
	disk     *Disk
	capacity int

	mu    sync.Mutex
	lru   *list.List // of PageID, front = most recently used
	index map[PageID]*list.Element
	data  map[PageID][]byte
	stats BufferPoolStats
}

// NewBufferPool returns a pool caching up to capacity pages of the disk.
// A capacity of 0 disables caching entirely (every Get goes to disk).
func NewBufferPool(disk *Disk, capacity int) *BufferPool {
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[PageID]*list.Element),
		data:     make(map[PageID][]byte),
	}
}

// Capacity returns the configured capacity in pages.
func (p *BufferPool) Capacity() int { return p.capacity }

// Get returns the contents of the page, reading it from disk on a miss. The
// returned slice is owned by the pool and must not be modified.
func (p *BufferPool) Get(id PageID) ([]byte, error) {
	p.mu.Lock()
	if el, ok := p.index[id]; ok {
		p.lru.MoveToFront(el)
		p.stats.Hits++
		data := p.data[id]
		p.mu.Unlock()
		return data, nil
	}
	p.stats.Misses++
	p.mu.Unlock()

	data, err := p.disk.Read(id)
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.capacity > 0 {
		if _, ok := p.index[id]; !ok {
			p.index[id] = p.lru.PushFront(id)
			p.data[id] = data
			for p.lru.Len() > p.capacity {
				back := p.lru.Back()
				victim := back.Value.(PageID)
				p.lru.Remove(back)
				delete(p.index, victim)
				delete(p.data, victim)
				p.stats.Evictions++
			}
		}
	}
	return data, nil
}

// Clear drops every cached page, emulating the paper's cold-cache protocol
// ("the cache is cleaned between any two queries").
func (p *BufferPool) Clear() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lru.Init()
	p.index = make(map[PageID]*list.Element)
	p.data = make(map[PageID][]byte)
}

// Stats returns a snapshot of the hit/miss counters.
func (p *BufferPool) Stats() BufferPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the hit/miss counters without dropping cached pages.
func (p *BufferPool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = BufferPoolStats{}
}
