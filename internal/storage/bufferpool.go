package storage

import (
	"container/list"
	"sync"
)

// BufferPoolStats reports hit/miss counts of a buffer pool.
type BufferPoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRate returns the fraction of lookups served from the pool.
func (s BufferPoolStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// BufferPool caches pages of a Pager with an LRU replacement policy. The
// paper's experiments run with a cold cache that is cleared between queries;
// Clear provides exactly that. Callers that hold a page across other pool
// operations (the paged segment readers assembling a record that straddles
// pages) pin it first: a pinned page is never evicted — not by capacity
// pressure, not by Evict, not by Clear — until its last pin is dropped.
type BufferPool struct {
	pager    Pager
	capacity int

	mu    sync.Mutex
	lru   *list.List // of PageID, front = most recently used
	index map[PageID]*list.Element
	data  map[PageID][]byte
	pins  map[PageID]int
	stats BufferPoolStats
}

// NewBufferPool returns a pool caching up to capacity pages of the pager.
// A capacity of 0 disables caching entirely (every Get goes to the pager).
func NewBufferPool(pager Pager, capacity int) *BufferPool {
	return &BufferPool{
		pager:    pager,
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[PageID]*list.Element),
		data:     make(map[PageID][]byte),
		pins:     make(map[PageID]int),
	}
}

// Capacity returns the configured capacity in pages.
func (p *BufferPool) Capacity() int { return p.capacity }

// Get returns the contents of the page, reading it from the pager on a miss.
// The returned slice is owned by the pool and must not be modified; callers
// that need it to stay coherent across further pool traffic must Pin the page
// for the duration.
func (p *BufferPool) Get(id PageID) ([]byte, error) {
	p.mu.Lock()
	if el, ok := p.index[id]; ok {
		p.lru.MoveToFront(el)
		p.stats.Hits++
		data := p.data[id]
		p.mu.Unlock()
		return data, nil
	}
	p.stats.Misses++
	p.mu.Unlock()

	data, err := p.pager.Read(id)
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.capacity > 0 || p.pins[id] > 0 {
		// A pinned page is cached even by a zero-capacity (cold-cache) pool:
		// the pin is a promise that the caller's slice stays the page, and
		// that promise must survive a concurrent Get of the same id.
		if _, ok := p.index[id]; !ok {
			p.index[id] = p.lru.PushFront(id)
			p.data[id] = data
			p.evictOverCapacityLocked()
		} else {
			// Raced with another miss of the same id: keep the resident copy
			// so every caller that pinned it observes one stable slice.
			data = p.data[id]
		}
	}
	return data, nil
}

// Pin marks the page as unevictable until a matching Unpin. Pinning a page
// that is not (yet) resident is allowed — the pin takes effect the moment a
// Get brings it in, which is exactly the interleaving a concurrent
// Get/Evict of the same id produces.
func (p *BufferPool) Pin(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pins[id]++
}

// Unpin drops one pin. It panics on a page that was not pinned: an unbalanced
// Unpin is a lifecycle bug that would otherwise surface as an impossible
// eviction much later. Dropping the last pin re-runs the capacity scan, so a
// page that was admitted only because it was pinned (capacity-0 cold-cache
// pools) or kept the pool in overflow leaves immediately rather than
// lingering as a phantom cache hit.
func (p *BufferPool) Unpin(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n, ok := p.pins[id]
	if !ok {
		panic("storage: Unpin of unpinned page")
	}
	if n > 1 {
		p.pins[id] = n - 1
		return
	}
	delete(p.pins, id)
	if p.lru.Len() > p.capacity {
		p.evictOverCapacityLocked()
	}
}

// Evict drops the page from the cache and reports whether it is gone. A
// pinned page is not evicted (returns false); an absent page is trivially
// gone (returns true).
func (p *BufferPool) Evict(id PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pins[id] > 0 {
		return false
	}
	el, ok := p.index[id]
	if !ok {
		return true
	}
	p.removeLocked(el, id)
	return true
}

// evictOverCapacityLocked brings the cache back under capacity, scanning from
// the LRU end and skipping pinned pages. If every resident page is pinned the
// pool runs over capacity rather than evicting a page someone holds — the
// overflow drains as pins drop and later insertions re-run the scan.
func (p *BufferPool) evictOverCapacityLocked() {
	over := p.lru.Len() - p.capacity
	if p.capacity <= 0 {
		// capacity 0 admits pages only for their pin's lifetime; everything
		// unpinned is surplus.
		over = p.lru.Len()
	}
	for el := p.lru.Back(); el != nil && over > 0; {
		prev := el.Prev()
		id := el.Value.(PageID)
		if p.pins[id] == 0 {
			p.removeLocked(el, id)
			p.stats.Evictions++
			over--
		}
		el = prev
	}
}

// removeLocked drops one resident page. Caller holds p.mu.
func (p *BufferPool) removeLocked(el *list.Element, id PageID) {
	p.lru.Remove(el)
	delete(p.index, id)
	delete(p.data, id)
}

// Clear drops every unpinned cached page, emulating the paper's cold-cache
// protocol ("the cache is cleaned between any two queries"). Pinned pages
// stay resident: a cold-cache sweep must not invalidate a page a reader is
// holding mid-record.
func (p *BufferPool) Clear() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for el := p.lru.Back(); el != nil; {
		prev := el.Prev()
		id := el.Value.(PageID)
		if p.pins[id] == 0 {
			p.removeLocked(el, id)
		}
		el = prev
	}
}

// Stats returns a snapshot of the hit/miss counters.
func (p *BufferPool) Stats() BufferPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the hit/miss counters without dropping cached pages.
func (p *BufferPool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = BufferPoolStats{}
}

// resident reports whether the page is currently cached (test hook).
func (p *BufferPool) resident(id PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.index[id]
	return ok
}
