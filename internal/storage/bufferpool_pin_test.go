package storage

// Pinned-page eviction coverage (the interleaving the original pool never
// stressed): a page pinned by one goroutine while other goroutines Get and
// Evict the same id, and force capacity pressure from unrelated pages. The
// invariant under test is the pin contract — a pinned page is one stable
// resident slice for the whole pin window, whatever eviction traffic runs
// concurrently. An eviction policy that takes the LRU tail unconditionally
// (the pre-pin implementation) fails the stability assertions here.

import (
	"sync"
	"testing"
)

func newTestPool(t *testing.T, pages, capacity int) (*BufferPool, []PageID) {
	t.Helper()
	disk := NewDisk(DiskConfig{PageSize: 64})
	ids := make([]PageID, pages)
	for i := range ids {
		ids[i] = disk.Allocate()
		buf := make([]byte, 64)
		buf[0] = byte(i)
		if err := disk.Write(ids[i], buf); err != nil {
			t.Fatal(err)
		}
	}
	return NewBufferPool(disk, capacity), ids
}

func TestBufferPoolPinnedPageSurvivesPressure(t *testing.T) {
	pool, ids := newTestPool(t, 8, 2)

	// Pin before residency: the pin must take effect when Get brings the
	// page in.
	pool.Pin(ids[0])
	if _, err := pool.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	// Flood the pool far past capacity.
	for _, id := range ids[1:] {
		if _, err := pool.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	if !pool.resident(ids[0]) {
		t.Fatal("pinned page evicted by capacity pressure")
	}
	if pool.Evict(ids[0]) {
		t.Fatal("Evict succeeded on a pinned page")
	}
	if !pool.resident(ids[0]) {
		t.Fatal("failed Evict still dropped the pinned page")
	}
	pool.Clear()
	if !pool.resident(ids[0]) {
		t.Fatal("Clear dropped a pinned page")
	}
	pool.Unpin(ids[0])
	if !pool.Evict(ids[0]) {
		t.Fatal("Evict refused an unpinned page")
	}
	if pool.resident(ids[0]) {
		t.Fatal("page resident after successful Evict")
	}
}

func TestBufferPoolAllPinnedOverflows(t *testing.T) {
	pool, ids := newTestPool(t, 5, 2)
	pinned := ids[:4]
	for _, id := range pinned {
		pool.Pin(id)
		if _, err := pool.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	// Every page pinned and the pool over capacity: nothing may be evicted
	// and nothing may loop forever getting there.
	for _, id := range pinned {
		if !pool.resident(id) {
			t.Fatalf("pinned page %d evicted while over capacity", id)
		}
		pool.Unpin(id)
	}
	// The overflow drains on the next insertion once pins are gone.
	if _, err := pool.Get(ids[4]); err != nil {
		t.Fatal(err)
	}
	if got := pool.lruLen(); got > 2 {
		t.Fatalf("pool still over capacity after pins dropped: %d pages resident", got)
	}
}

// lruLen reports the resident page count (test hook).
func (p *BufferPool) lruLen() int {
	n, _ := p.cached()
	return n
}

func TestBufferPoolZeroCapacityDropsPageOnUnpin(t *testing.T) {
	pool, ids := newTestPool(t, 2, 0)
	pool.Pin(ids[0])
	d1, err := pool.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	// While pinned, even a capacity-0 pool must serve one stable slice.
	d2, err := pool.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if &d1[0] != &d2[0] {
		t.Fatal("pinned page not stable in capacity-0 pool")
	}
	pool.Unpin(ids[0])
	// The cold-cache contract resumes the moment the pin drops: nothing may
	// stay resident (a lingering page would fake cache hits and undercount
	// the Figure 2 page reads).
	if pool.resident(ids[0]) {
		t.Fatal("capacity-0 pool kept a page resident after Unpin")
	}
}

func TestBufferPoolConcurrentGetEvictSamePage(t *testing.T) {
	pool, ids := newTestPool(t, 16, 2)
	hot := ids[0]
	const rounds = 500

	var wg sync.WaitGroup
	// Pinner: holds the page across two Gets and asserts it is one stable
	// slice with untorn contents for the whole pin window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			pool.Pin(hot)
			d1, err := pool.Get(hot)
			if err != nil {
				t.Errorf("Get: %v", err)
				pool.Unpin(hot)
				return
			}
			if pool.Evict(hot) {
				t.Error("Evict succeeded while page was pinned")
			}
			d2, err := pool.Get(hot)
			if err != nil {
				t.Errorf("Get: %v", err)
				pool.Unpin(hot)
				return
			}
			if &d1[0] != &d2[0] {
				t.Error("pinned page re-read returned a different slice (page was evicted mid-pin)")
			}
			if d1[0] != 0 || d2[0] != 0 {
				t.Errorf("pinned page contents torn: %d %d", d1[0], d2[0])
			}
			pool.Unpin(hot)
		}
	}()
	// Evictor: hammers Get/Evict of the same id.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			if _, err := pool.Get(hot); err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			pool.Evict(hot)
		}
	}()
	// Pressure: cycles unrelated pages through the tiny pool so the
	// capacity-eviction scan runs constantly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			id := ids[1+r%(len(ids)-1)]
			if _, err := pool.Get(id); err != nil {
				t.Errorf("Get: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
