//go:build !(linux || darwin || freebsd || netbsd || openbsd)

package storage

import (
	"errors"
	"os"
)

// Portability stub: platforms without a (wired-up) mmap never construct an
// MmapDisk — OpenMmapDisk fails with ErrMmapUnsupported before reaching
// these, and callers fall back to the FileDisk pread path.

const mmapSupported = false

func mmapFile(*os.File, int64) ([]byte, error) {
	return nil, ErrMmapUnsupported
}

func munmapFile([]byte) error {
	return errors.New("storage: munmap without mmap support")
}

func madvise([]byte, Advice) error { return nil }
