package obs

import (
	"runtime"
	"sync"
)

// RegisterRuntimeGauges registers Go runtime health series: goroutine count,
// heap bytes, GC pause totals and cycle count. ReadMemStats stops the world
// briefly, so scrapes of these gauges share one snapshot per scrape pass
// (refreshed at most once per registered-gauge read burst is unnecessary —
// the stats are read freshly per gauge call, which is fine at scrape rates).
func RegisterRuntimeGauges(r *Registry) {
	var mu sync.Mutex
	var ms runtime.MemStats
	read := func(f func(*runtime.MemStats) float64) GaugeFunc {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			runtime.ReadMemStats(&ms)
			return f(&ms)
		}
	}
	r.Gauge("go_goroutines", func() float64 { return float64(runtime.NumGoroutine()) })
	r.Gauge("go_heap_alloc_bytes", read(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	r.Gauge("go_heap_objects", read(func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) }))
	r.Gauge("go_gc_pause_seconds_total", read(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 }))
	r.Gauge("go_gc_cycles_total", read(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
}
