package obs

import (
	"context"
	"sync"
	"time"
)

// Trace is a per-request span tree. A request that opts in gets a Trace
// attached to its context; every instrumented stage opens a child span.
// All methods are no-ops on a nil receiver, so the instrumented code calls
// them unconditionally and the tracing-off path costs one context lookup.
type Trace struct {
	root *Span
}

// Span is one timed stage of a request. Children may be appended and
// attributes set concurrently (the fan-out and batch paths run spans from
// worker goroutines).
type Span struct {
	mu       sync.Mutex
	stage    string
	shard    int
	start    time.Time
	end      time.Time
	attrs    map[string]any
	children []*Span
}

// NewTrace starts a trace whose root span covers the whole request.
func NewTrace(stage string) *Trace {
	return &Trace{root: newSpan(stage)}
}

func newSpan(stage string) *Span {
	return &Span{stage: stage, shard: -1, start: time.Now()}
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span (and any still-open descendants) and renders the
// tree. Returns nil for a nil trace.
func (t *Trace) Finish() *SpanJSON {
	if t == nil {
		return nil
	}
	now := time.Now()
	return t.root.render(now, t.root.start)
}

// Child opens a new child span. Returns nil (safe to use) when s is nil.
func (s *Span) Child(stage string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(stage)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetShard tags the span with a shard number.
func (s *Span) SetShard(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.shard = n
	s.mu.Unlock()
}

// Set attaches an attribute rendered verbatim into the span's JSON (used for
// instrument counter deltas, result counts, plan decisions).
func (s *Span) Set(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// SpanJSON is the wire form of a span tree: stage, offset from the trace
// start, duration, optional shard and attributes, children in start order.
type SpanJSON struct {
	Stage          string         `json:"stage"`
	OffsetMicros   int64          `json:"offset_us"`
	DurationMicros int64          `json:"duration_us"`
	Shard          *int           `json:"shard,omitempty"`
	Attrs          map[string]any `json:"attrs,omitempty"`
	Children       []*SpanJSON    `json:"children,omitempty"`
}

func (s *Span) render(now, traceStart time.Time) *SpanJSON {
	s.mu.Lock()
	end := s.end
	if end.IsZero() {
		end = now
	}
	out := &SpanJSON{
		Stage:          s.stage,
		OffsetMicros:   s.start.Sub(traceStart).Microseconds(),
		DurationMicros: end.Sub(s.start).Microseconds(),
	}
	if s.shard >= 0 {
		shard := s.shard
		out.Shard = &shard
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			out.Attrs[k] = v
		}
	}
	children := s.children
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.render(now, traceStart))
	}
	return out
}

type traceKey struct{}

// WithTrace attaches the trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil. The nil return is usable:
// every Trace/Span method no-ops on nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// SpanFromContext returns the root span of the context's trace, or nil.
func SpanFromContext(ctx context.Context) *Span {
	return FromContext(ctx).Root()
}
