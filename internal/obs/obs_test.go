package obs

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialsim/internal/stats"
)

func TestBucketIndexMonotoneAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx <= prev && v != 0 {
			t.Fatalf("bucketIndex not monotone at %d: %d <= %d", v, idx, prev)
		}
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		lo, hi := bucketBounds(idx)
		if v < lo || (v >= hi && hi != math.MaxInt64) {
			t.Fatalf("value %d outside its bucket [%d, %d)", v, lo, hi)
		}
		prev = idx
	}
}

func TestBucketRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(int64(time.Hour))
		lo, hi := bucketBounds(bucketIndex(v))
		if v >= 16 {
			if rel := float64(hi-lo) / float64(lo); rel > 1.0/16+1e-9 {
				t.Fatalf("bucket [%d,%d) width %.4f relative, want <= 6.25%%", lo, hi, rel)
			}
		}
	}
}

// Histogram quantiles must agree with the exact sample percentile within the
// bucket resolution (6.25% relative) across sample shapes.
func TestHistogramQuantileVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := map[string]func() int64{
		"uniform":   func() int64 { return rng.Int63n(int64(50 * time.Millisecond)) },
		"lognormal": func() int64 { return int64(math.Exp(rng.NormFloat64()*1.5+12) * 1000) },
		"bimodal": func() int64 {
			if rng.Intn(10) == 0 {
				return int64(100*time.Millisecond) + rng.Int63n(int64(20*time.Millisecond))
			}
			return int64(time.Millisecond) + rng.Int63n(int64(time.Millisecond))
		},
	}
	for name, draw := range shapes {
		h := NewHistogram()
		xs := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := draw()
			h.Observe(time.Duration(v))
			xs = append(xs, float64(v))
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			exact := stats.Percentile(xs, q*100)
			got := float64(h.Quantile(q))
			tol := exact * 0.10 // bucket width 6.25% + interpolation slack
			if math.Abs(got-exact) > tol {
				t.Errorf("%s p%g: histogram %.0f vs exact %.0f (tol %.0f)", name, q*100, got, exact, tol)
			}
		}
		if h.Count() != 20000 {
			t.Fatalf("%s count = %d", name, h.Count())
		}
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(-5 * time.Second) // clamps to 0
	h.Observe(3 * time.Millisecond)
	if h.Min() != 0 {
		t.Fatalf("min = %v, want 0 (negative clamp)", h.Min())
	}
	if h.Max() != 3*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	if q := h.Quantile(1); q != 3*time.Millisecond {
		t.Fatalf("p100 = %v, want exact max", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("p0 = %v, want exact min", q)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	merged := NewHistogram()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		v := time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		merged.Observe(v)
	}
	s := a.SnapshotInto(nil)
	s.Merge(b.SnapshotInto(nil))
	want := merged.SnapshotInto(nil)
	if s.Count != want.Count || s.Sum != want.Sum || s.Min != want.Min || s.Max != want.Max {
		t.Fatalf("merge mismatch: %+v vs %+v", s.Count, want.Count)
	}
	for _, q := range []float64{0.5, 0.99} {
		if s.Quantile(q) != want.Quantile(q) {
			t.Fatalf("merged quantile %g differs", q)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("hits_total")
			h := r.Histogram(Name("lat_seconds", "class", "range"))
			for i := 0; i < 2000; i++ {
				c.Inc()
				c.Add(2)
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%500 == 0 {
					r.Gauge("depth", func() float64 { return float64(i) })
					var buf bytes.Buffer
					r.WritePrometheus(&buf)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("hits_total").Value(); got != 8*2000*3 {
		t.Fatalf("counter = %d, want %d", got, 8*2000*3)
	}
	if got := r.Histogram(Name("lat_seconds", "class", "range")).Count(); got != 8*2000 {
		t.Fatalf("histogram count = %d", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("requests_total", "route", "/v1/range")).Add(7)
	r.Gauge("inflight", func() float64 { return 3 })
	h := r.Histogram(Name("latency_seconds", "class", "knn"))
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE requests_total counter\n",
		`requests_total{route="/v1/range"} 7`,
		"# TYPE inflight gauge\n",
		"inflight 3",
		"# TYPE latency_seconds histogram\n",
		`latency_seconds_bucket{class="knn",le="+Inf"} 100`,
		`latency_seconds_count{class="knn"} 100`,
		`latency_seconds{class="knn",quantile="0.5"}`,
		`latency_seconds{class="knn",quantile="0.999"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Cumulative buckets must be non-decreasing and end at the count.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "latency_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmtSscanLast(line, &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = v
	}
	if last != 100 {
		t.Fatalf("final cumulative bucket = %d, want 100", last)
	}
}

func fmtSscanLast(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*v, err = parseInt64(line[i+1:])
	return 1, err
}

func parseInt64(s string) (int64, error) {
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, &parseErr{s}
		}
		v = v*10 + int64(c-'0')
	}
	return v, nil
}

type parseErr struct{ s string }

func (e *parseErr) Error() string { return "not an integer: " + e.s }

func TestNameAndSplit(t *testing.T) {
	n := Name("x_total", "a", "1", "b", "2")
	if n != `x_total{a="1",b="2"}` {
		t.Fatalf("Name = %q", n)
	}
	base, labels := splitName(n)
	if base != "x_total" || labels != `a="1",b="2"` {
		t.Fatalf("splitName = %q, %q", base, labels)
	}
	if Name("plain") != "plain" {
		t.Fatal("label-less Name should be identity")
	}
	base, labels = splitName("plain")
	if base != "plain" || labels != "" {
		t.Fatalf("splitName(plain) = %q, %q", base, labels)
	}
}

func TestTraceTree(t *testing.T) {
	tr := NewTrace("query")
	root := tr.Root()
	admit := root.Child("admit")
	admit.End()
	fan := root.Child("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := fan.Child("shard_visit")
			s.SetShard(i)
			s.Set("results", i*10)
			s.End()
		}(i)
	}
	wg.Wait()
	fan.End()
	out := tr.Finish()
	if out.Stage != "query" || len(out.Children) != 2 {
		t.Fatalf("root = %+v", out)
	}
	var fanJSON *SpanJSON
	for _, c := range out.Children {
		if c.Stage == "fanout" {
			fanJSON = c
		}
	}
	if fanJSON == nil || len(fanJSON.Children) != 3 {
		t.Fatalf("fanout children = %+v", fanJSON)
	}
	seen := map[int]bool{}
	for _, s := range fanJSON.Children {
		if s.Shard == nil {
			t.Fatalf("shard span missing shard: %+v", s)
		}
		seen[*s.Shard] = true
		if s.Attrs["results"] != *s.Shard*10 {
			t.Fatalf("attrs = %+v", s.Attrs)
		}
		if s.DurationMicros < 0 || s.OffsetMicros < 0 {
			t.Fatalf("negative timing: %+v", s)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("shards seen = %v", seen)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if tr.Root() != nil || tr.Finish() != nil {
		t.Fatal("nil trace should yield nil root and nil JSON")
	}
	var s *Span
	c := s.Child("x") // must not panic, must stay nil
	if c != nil {
		t.Fatal("nil span child should be nil")
	}
	c.End()
	c.SetShard(3)
	c.Set("k", "v")
	ctx := context.Background()
	if FromContext(ctx) != nil || SpanFromContext(ctx) != nil {
		t.Fatal("trace-less context should yield nil")
	}
	ctx = WithTrace(ctx, NewTrace("q"))
	if FromContext(ctx) == nil || SpanFromContext(ctx) == nil {
		t.Fatal("trace lost in context")
	}
}

func TestTraceUnendedSpansClosedAtFinish(t *testing.T) {
	tr := NewTrace("q")
	child := tr.Root().Child("open")
	_ = child // never ended
	time.Sleep(2 * time.Millisecond)
	out := tr.Finish()
	if len(out.Children) != 1 {
		t.Fatalf("children = %d", len(out.Children))
	}
	if out.Children[0].DurationMicros <= 0 {
		t.Fatalf("unended span should be closed at finish: %+v", out.Children[0])
	}
	if out.DurationMicros < out.Children[0].DurationMicros {
		t.Fatalf("root shorter than child: %d < %d", out.DurationMicros, out.Children[0].DurationMicros)
	}
}

// Observing with metrics on must not allocate: the serving layer keeps
// histograms enabled for every query.
func TestObserveZeroAlloc(t *testing.T) {
	h := NewHistogram()
	var c Counter
	n := testing.AllocsPerRun(1000, func() {
		h.Observe(123 * time.Microsecond)
		c.Inc()
	})
	if n != 0 {
		t.Fatalf("Observe allocates %.1f per run, want 0", n)
	}
}

func TestRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeGauges(r)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_pause_seconds_total", "go_gc_cycles_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime gauges missing %s", want)
		}
	}
}
