// Package obs is the observability substrate of the serving layer: a
// lock-light metrics registry (atomic counters, gauges and log-bucketed
// latency histograms with percentile estimation), Prometheus text
// exposition, and a per-request span tracer threaded through the existing
// context.Context plumbing.
//
// The paper's contribution is *explaining* where spatial query time goes —
// the Figure 2/3 cost breakdowns internal/instrument reproduces offline.
// This package turns that explanation live: the serving layer registers the
// paper's cost categories, per-query-class latency histograms and its
// robustness counters as named series a scraper can watch, and a request
// that opts in (?trace=1) gets its own span tree back — admission, planner
// decision, cache lookup, per-shard fan-out, merge, WAL I/O — with per-span
// durations and instrument counter deltas.
//
// Design constraints, in order:
//
//   - the disabled paths are free: with no trace attached to a context,
//     every tracer call is a nil-receiver no-op and allocates nothing; a
//     metrics observation is one atomic add (histograms add one more for
//     the sum), so metrics stay on in production;
//   - readers never block writers: instruments are resolved to pointers at
//     wiring time and the registry's maps are only touched at registration
//     and scrape time;
//   - exposition is dependency-free: WritePrometheus renders the standard
//     text format without importing a client library.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing series. The zero value is ready to
// use; Add is one atomic add.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// GaugeFunc is a gauge read at scrape time. Gauges are callbacks rather than
// stored values so existing atomic counters (the store's in-flight count, the
// breaker's state, a queue depth) become series without double bookkeeping on
// their hot paths.
type GaugeFunc func() float64

// Registry is a named collection of instruments. Get-or-create methods are
// safe for concurrent use; hot paths should resolve instruments once at
// wiring time and hold the pointers.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	counterFns map[string]GaugeFunc
	gauges     map[string]GaugeFunc
	hists      map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		counterFns: make(map[string]GaugeFunc),
		gauges:     make(map[string]GaugeFunc),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. The name may
// carry Prometheus labels inline: `requests_total{route="/v1/range"}`.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// CounterFunc registers (or replaces) a counter series backed by a callback —
// the bridge for monotonic atomics that already exist elsewhere (the store's
// shed/deadline/degraded counts), exposed without double bookkeeping on their
// hot paths. The callback must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name string, fn GaugeFunc) {
	r.mu.Lock()
	r.counterFns[name] = fn
	r.mu.Unlock()
}

// Gauge registers (or replaces) the named gauge callback.
func (r *Registry) Gauge(name string, fn GaugeFunc) {
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named latency histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Histograms returns the registered histograms keyed by name (for harnesses
// that consume percentiles directly instead of scraping text).
func (r *Registry) Histograms() map[string]*Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		out[n] = h
	}
	return out
}

// Name renders a series name with label pairs: Name("x_total", "class",
// "range") -> `x_total{class="range"}`. Odd trailing label keys are dropped.
func Name(base string, labels ...string) string {
	if len(labels) < 2 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// splitName separates an inline-labeled series name into its base name and
// the label body (without braces): `a{b="c"}` -> ("a", `b="c"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// WritePrometheus renders every instrument in the Prometheus text exposition
// format, sorted by name for stable scrapes. Histograms are rendered as
// cumulative `_bucket{le=...}` series (collapsed to power-of-two boundaries),
// plus `_sum`, `_count` and precomputed `{quantile=...}` gauge rows for
// p50/p90/p99/p999.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	counterNames := sortedKeys(r.counters)
	counterFnNames := sortedKeys(r.counterFns)
	gaugeNames := sortedKeys(r.gauges)
	histNames := sortedKeys(r.hists)
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	counterFns := make(map[string]GaugeFunc, len(r.counterFns))
	for n, f := range r.counterFns {
		counterFns[n] = f
	}
	gauges := make(map[string]GaugeFunc, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	for _, n := range counterNames {
		base, _ := splitName(n)
		fmt.Fprintf(w, "# TYPE %s counter\n", base)
		fmt.Fprintf(w, "%s %d\n", n, counters[n].Value())
	}
	for _, n := range counterFnNames {
		base, _ := splitName(n)
		fmt.Fprintf(w, "# TYPE %s counter\n", base)
		fmt.Fprintf(w, "%s %g\n", n, counterFns[n]())
	}
	for _, n := range gaugeNames {
		base, _ := splitName(n)
		fmt.Fprintf(w, "# TYPE %s gauge\n", base)
		fmt.Fprintf(w, "%s %g\n", n, gauges[n]())
	}
	for _, n := range histNames {
		hists[n].writePrometheus(w, n)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
