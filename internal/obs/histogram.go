package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log-linear latency histogram: values (nanoseconds)
// land in buckets whose width is 1/16th of their magnitude, so a quantile
// estimate is within ~6.25% of the exact sample quantile at any scale from
// nanoseconds to hours. Observe is a handful of atomic operations and never
// allocates, which is what lets the serving layer keep it on for every query.
//
// Bucketing: values below 16 get unit-width buckets; larger values are keyed
// by (octave, 4 mantissa bits below the MSB) — the classic log-linear scheme
// (Go runtime metrics, HDR histogram) with 16 sub-buckets per power of two.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	min    atomic.Int64 // nanoseconds; valid when count > 0
	max    atomic.Int64 // nanoseconds
}

// numBuckets covers every non-negative int64: 16 unit buckets plus 59 octaves
// of 16 sub-buckets.
const numBuckets = 960

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a non-negative value onto its bucket.
func bucketIndex(v int64) int {
	if v < 16 {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 5
	return ((e + 1) << 4) | int((v>>uint(e))&15)
}

// bucketBounds returns the [lo, hi) value range of bucket idx.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < 16 {
		return int64(idx), int64(idx) + 1
	}
	e := (idx >> 4) - 1
	lo = (16 + int64(idx&15)) << uint(e)
	hi = lo + (1 << uint(e))
	if hi < lo { // top bucket reaches past MaxInt64
		hi = math.MaxInt64
	}
	return lo, hi
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the q-th quantile (q in [0, 1]) by linear interpolation
// within the target bucket, clamped to the observed min/max so the extreme
// quantiles stay exact. Concurrent observations make the estimate a snapshot
// blur, not an error.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.SnapshotInto(nil).Quantile(q)
}

// HistogramSnapshot is a point-in-time copy of a histogram, mergeable with
// other snapshots (the loadgen harness merges the per-class histograms into
// one mixed-workload view).
type HistogramSnapshot struct {
	Counts []int64
	Count  int64
	Sum    int64
	Min    int64 // math.MaxInt64 when empty
	Max    int64
}

// SnapshotInto copies the histogram into s (allocating when s is nil) and
// returns it.
func (h *Histogram) SnapshotInto(s *HistogramSnapshot) *HistogramSnapshot {
	if s == nil {
		s = &HistogramSnapshot{Counts: make([]int64, numBuckets), Min: math.MaxInt64}
	}
	if len(s.Counts) != numBuckets {
		s.Counts = make([]int64, numBuckets)
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	return s
}

// Merge folds o into s component-wise.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Quantile estimates the q-th quantile of the snapshot (see
// Histogram.Quantile).
func (s *HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(s.Min)
	}
	if q >= 1 {
		return time.Duration(s.Max)
	}
	// Closest-rank position matching stats.Percentile's convention: rank in
	// [0, Count-1], interpolated within the bucket holding it.
	rank := q * float64(s.Count-1)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		// Bucket i holds ranks [cum, cum+c).
		if rank < float64(cum+c) {
			lo, hi := bucketBounds(i)
			frac := (rank - float64(cum) + 0.5) / float64(c)
			v := float64(lo) + frac*float64(hi-lo)
			if v < float64(s.Min) {
				v = float64(s.Min)
			}
			if v > float64(s.Max) {
				v = float64(s.Max)
			}
			return time.Duration(v)
		}
		cum += c
	}
	return time.Duration(s.Max)
}

// writePrometheus renders the histogram under the given (possibly
// inline-labeled) series name: cumulative le buckets collapsed to power-of-two
// boundaries (exact — log-linear sub-buckets nest inside octaves), _sum and
// _count, plus quantile gauge rows. Values are rendered in seconds, matching
// the *_seconds naming convention of the serving layer's series.
func (h *Histogram) writePrometheus(w io.Writer, name string) {
	s := h.SnapshotInto(nil)
	base, labels := splitName(name)
	sep := ""
	if labels != "" {
		sep = ","
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", base)
	var cum int64
	emitted := false
	for i := 0; i < numBuckets; {
		// Octave block: unit buckets emit individually, then 16 per power of two.
		next := i + 1
		if i >= 16 {
			next = (i | 15) + 1
		}
		var blockCount int64
		for j := i; j < next; j++ {
			blockCount += s.Counts[j]
		}
		cum += blockCount
		if blockCount > 0 || (emitted && cum < s.Count) {
			_, hi := bucketBounds(next - 1)
			fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", base, labels, sep, float64(hi)/1e9, cum)
			emitted = true
		}
		i = next
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", base, labels, sep, s.Count)
	// _sum/_count carry the base labels only; omit the braces entirely for an
	// unlabeled series.
	body := ""
	if labels != "" {
		body = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", base, body, float64(s.Sum)/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", base, body, s.Count)
	for _, q := range [...]float64{0.5, 0.9, 0.99, 0.999} {
		fmt.Fprintf(w, "%s{%s%squantile=\"%g\"} %g\n", base, labels, sep, q, float64(s.Quantile(q))/1e9)
	}
}
