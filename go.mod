module spatialsim

go 1.22
