// N-body example: neighbor-driven force updates, the cosmology use case the
// paper cites ("the position of each celestial object at time step t(i+1) has
// to be computed based on the gravitational field ... of its neighbors at
// time step t(i)").
//
// Each step computes, for every particle, a short-range interaction with its
// k nearest neighbors, moves the particles accordingly, and compares the
// per-step cost of doing this with an in-place R-Tree, a throwaway R-Tree
// rebuilt per step, and the SimIndex.
//
//	go run ./examples/nbody
package main

import (
	"fmt"
	"math/rand"
	"time"

	"spatialsim/internal/core"
	"spatialsim/internal/datagen"
	"spatialsim/internal/geom"
	"spatialsim/internal/index"
	"spatialsim/internal/moving"
	"spatialsim/internal/rtree"
)

const (
	particles  = 20000
	steps      = 3
	kNeighbors = 6
)

func main() {
	universe := geom.NewAABB(geom.V(0, 0, 0), geom.V(100, 100, 100))
	base := datagen.GenerateClustered(datagen.ClusteredConfig{
		N: particles, Clusters: 12, Universe: universe, ClusterStd: 6, ElementSize: 0.05, Seed: 3,
	})
	fmt.Printf("n-body model: %d particles in %d halos\n", base.Len(), 12)

	candidates := []struct {
		name string
		make func() index.Index
	}{
		{"rtree-inplace", func() index.Index { return rtree.NewDefault() }},
		{"rtree-throwaway", func() index.Index { return moving.NewThrowaway(rtree.NewDefault()) }},
		{"simindex", func() index.Index {
			return core.New(core.Config{Universe: universe, ExpectedQueriesPerStep: particles})
		}},
	}
	fmt.Printf("%-18s %-14s %-14s %s\n", "index", "neighbor phase", "update phase", "total")
	for _, c := range candidates {
		d := base.Clone()
		ix := c.make()
		items := make([]index.Item, d.Len())
		for i := range d.Elements {
			items[i] = index.Item{ID: d.Elements[i].ID, Box: d.Elements[i].Box}
		}
		ix.(index.BulkLoader).BulkLoad(items)

		var neighborTime, updateTime time.Duration
		r := rand.New(rand.NewSource(4))
		for step := 0; step < steps; step++ {
			// Interaction phase: kNN per particle drives its displacement.
			start := time.Now()
			displacements := make([]geom.Vec3, d.Len())
			for i := range d.Elements {
				e := &d.Elements[i]
				var pull geom.Vec3
				for _, n := range ix.KNN(e.Position, kNeighbors+1) {
					if n.ID == e.ID {
						continue
					}
					dir := n.Box.Center().Sub(e.Position)
					dist := dir.Len() + 1e-6
					pull = pull.Add(dir.Scale(0.002 / (dist * dist)))
				}
				// Small random thermal jitter.
				pull = pull.Add(geom.V(r.Float64()-0.5, r.Float64()-0.5, r.Float64()-0.5).Scale(0.001))
				displacements[i] = pull
			}
			neighborTime += time.Since(start)

			// Update phase: move particles and maintain the index.
			start = time.Now()
			if batch, ok := ix.(index.BatchUpdater); ok {
				moves := make([]index.Move, 0, d.Len())
				for i := range d.Elements {
					old := d.Elements[i].Box
					d.Elements[i].Translate(displacements[i])
					moves = append(moves, index.Move{ID: d.Elements[i].ID, OldBox: old, NewBox: d.Elements[i].Box})
				}
				batch.ApplyMoves(moves)
			} else {
				for i := range d.Elements {
					old := d.Elements[i].Box
					d.Elements[i].Translate(displacements[i])
					ix.Update(d.Elements[i].ID, old, d.Elements[i].Box)
				}
			}
			if tw, ok := ix.(*moving.Throwaway); ok {
				tw.Rebuild()
			}
			updateTime += time.Since(start)
		}
		fmt.Printf("%-18s %-14v %-14v %v\n", c.name,
			neighborTime.Round(time.Millisecond), updateTime.Round(time.Millisecond),
			(neighborTime + updateTime).Round(time.Millisecond))
	}
}
