// Mesh query example: range queries on a deforming unstructured mesh using
// connectivity-driven strategies (DLS and OCTOPUS) that need no index
// maintenance at all, compared against an R-Tree that must be rebuilt after
// every deformation step — the material-deformation / earthquake workload of
// the paper.
//
//	go run ./examples/meshquery
package main

import (
	"fmt"
	"time"

	"spatialsim/internal/datagen"
	"spatialsim/internal/geom"
	"spatialsim/internal/index"
	"spatialsim/internal/mesh"
	"spatialsim/internal/rtree"
)

func main() {
	universe := geom.NewAABB(geom.V(0, 0, 0), geom.V(10, 10, 10))
	// A concave specimen: a block of material with a machined slot.
	slot := geom.NewAABB(geom.V(4, 4, 0), geom.V(6, 6, 10))
	m := mesh.GenerateLattice(mesh.LatticeConfig{
		Nx: 25, Ny: 25, Nz: 25, Universe: universe, Jitter: 0.2, Hole: slot, Seed: 1,
	})
	fmt.Printf("mesh: %d vertices (concave: slot removed)\n", m.Len())

	dls := mesh.NewDLS(m, 8)
	oct := mesh.NewOctopus(m, 8)
	fmt.Printf("OCTOPUS surface start points: %d\n", oct.SurfaceVertices())

	const steps = 3
	const queriesPerStep = 100
	var dlsTime, octTime, rtreeTime, rebuildTime time.Duration
	var dlsMissed int
	for step := 0; step < steps; step++ {
		// Deformation step: every vertex moves, connectivity is unchanged.
		m.Deform(0.02, int64(step+10))

		// The R-Tree baseline has to be rebuilt to stay correct.
		start := time.Now()
		items := make([]index.Item, m.Len())
		for i := range m.Vertices {
			items[i] = index.Item{ID: m.Vertices[i].ID, Box: geom.PointAABB(m.Vertices[i].Pos)}
		}
		rt := rtree.NewDefault()
		rt.BulkLoad(items)
		rebuildTime += time.Since(start)

		queries := datagen.GenerateRangeQueries(datagen.RangeQueryConfig{
			N: queriesPerStep, Selectivity: 2e-3, Universe: universe, Seed: int64(step + 20),
		})
		for _, q := range queries {
			truth := len(m.BruteForceRange(q))

			start = time.Now()
			got := len(dls.Range(q))
			dlsTime += time.Since(start)
			if got < truth {
				dlsMissed++
			}

			start = time.Now()
			_ = oct.Range(q)
			octTime += time.Since(start)

			start = time.Now()
			_ = index.SearchIDs(rt, q)
			rtreeTime += time.Since(start)
		}
	}
	fmt.Printf("%-16s %-16s %-16s %s\n", "method", "maintenance", "query time", "notes")
	fmt.Printf("%-16s %-16v %-16v %s\n", "dls", time.Duration(0), dlsTime.Round(time.Millisecond),
		fmt.Sprintf("%d queries incomplete on the concave mesh", dlsMissed))
	fmt.Printf("%-16s %-16v %-16v %s\n", "octopus", time.Duration(0), octTime.Round(time.Millisecond), "complete (surface start points)")
	fmt.Printf("%-16s %-16v %-16v %s\n", "rtree", rebuildTime.Round(time.Millisecond), rtreeTime.Round(time.Millisecond), "rebuilt every step")
}
