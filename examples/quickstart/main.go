// Quickstart: build a SimIndex over a synthetic neuron dataset, run range and
// kNN queries, apply one simulation step of movement and query again.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"spatialsim/internal/core"
	"spatialsim/internal/datagen"
	"spatialsim/internal/geom"
	"spatialsim/internal/index"
)

func main() {
	// 1. Generate a small synthetic neuroscience dataset: 50 neurons, 200
	//    cylinder segments each, in the paper's 285 µm³ universe.
	dataset := datagen.GenerateNeurons(datagen.DefaultNeuronConfig(50, 200, 1))
	fmt.Printf("dataset: %d elements in universe %v\n", dataset.Len(), dataset.Universe)

	// 2. Build the SimIndex (grid resolution picked by the analytical model).
	ix := core.New(core.Config{Universe: dataset.Universe, ExpectedQueriesPerStep: 100})
	items := make([]index.Item, dataset.Len())
	for i := range dataset.Elements {
		items[i] = index.Item{ID: dataset.Elements[i].ID, Box: dataset.Elements[i].Box}
	}
	ix.BulkLoad(items)
	fmt.Printf("index: %s\n", ix)

	// 3. Range query: everything within a small box around the center.
	center := dataset.Universe.Center()
	query := geom.AABBFromCenter(center, geom.V(0.5, 0.5, 0.5))
	hits := index.SearchIDs(ix, query)
	fmt.Printf("range query %v -> %d elements\n", query, len(hits))

	// 4. k-nearest-neighbor query.
	neighbors := ix.KNN(center, 5)
	fmt.Printf("5 nearest elements to %v:\n", center)
	for _, n := range neighbors {
		fmt.Printf("  id=%d box=%v\n", n.ID, n.Box)
	}

	// 5. One simulation step: every element moves a tiny amount (neural
	//    plasticity); the index applies the cheapest maintenance strategy.
	old := make([]geom.AABB, dataset.Len())
	for i := range dataset.Elements {
		old[i] = dataset.Elements[i].Box
	}
	movement := datagen.NewPlasticityModel(2)
	stats := movement.Step(dataset)
	moves := make([]index.Move, 0, dataset.Len())
	for i := range dataset.Elements {
		if dataset.Elements[i].Box != old[i] {
			moves = append(moves, index.Move{
				ID:     dataset.Elements[i].ID,
				OldBox: old[i],
				NewBox: dataset.Elements[i].Box,
			})
		}
	}
	ix.ApplyMoves(moves)
	fmt.Printf("movement step: %d moved, mean displacement %.4f µm, strategy=%s\n",
		stats.Moved, stats.MeanDisplacement, ix.LastStrategy())

	// 6. Queries keep working on the updated model.
	hits = index.SearchIDs(ix, query)
	fmt.Printf("range query after the step -> %d elements\n", len(hits))
}
