// Neuroscience example: synapse detection and neural plasticity.
//
// This is the paper's motivating Blue Brain workload at laptop scale: neuron
// morphologies made of cylinder segments, a spatial self-join that detects
// synapse locations (segments of different neurons within a threshold
// distance), and a plasticity simulation in which every segment moves a tiny
// amount per step while monitoring queries keep running.
//
//	go run ./examples/neuroscience
package main

import (
	"fmt"
	"time"

	"spatialsim/internal/core"
	"spatialsim/internal/datagen"
	"spatialsim/internal/geom"
	"spatialsim/internal/index"
	"spatialsim/internal/sim"
)

func main() {
	const (
		neurons         = 40
		segments        = 300
		synapseGap      = 0.005 // µm between membranes
		plasticitySteps = 5
	)
	dataset := datagen.GenerateNeurons(datagen.DefaultNeuronConfig(neurons, segments, 7))
	fmt.Printf("neuroscience model: %d neurons, %d segments\n", neurons, dataset.Len())

	// Map each segment to its neuron so the join can exclude same-neuron pairs,
	// and keep the exact cylinder geometry for refinement.
	neuronOf := make(map[int64]int, dataset.Len())
	shape := make(map[int64]geom.Cylinder, dataset.Len())
	for i := range dataset.Elements {
		e := &dataset.Elements[i]
		neuronOf[e.ID] = int(e.ID) / segments
		shape[e.ID] = e.Shape
	}

	// Synapse detection: grid self-join with exact capsule-distance refinement.
	engine := core.New(core.Config{Universe: dataset.Universe, ExpectedQueriesPerStep: 100})
	items := make([]index.Item, dataset.Len())
	for i := range dataset.Elements {
		items[i] = index.Item{ID: dataset.Elements[i].ID, Box: dataset.Elements[i].Box}
	}
	engine.BulkLoad(items)

	start := time.Now()
	pairs := engine.SelfJoin(synapseGap, func(a, b index.Item) bool {
		if neuronOf[a.ID] == neuronOf[b.ID] {
			return false // touching segments of the same neuron are not synapses
		}
		return shape[a.ID].WithinDistance(shape[b.ID], synapseGap)
	})
	fmt.Printf("synapse detection: %d candidate synapses found in %v\n",
		len(pairs), time.Since(start).Round(time.Millisecond))

	// Plasticity simulation: all elements move a little every step while the
	// model is monitored with range queries around active regions.
	simulation := sim.New(dataset, datagen.NewPlasticityModel(8), engine, sim.Config{
		QueriesPerStep:   200,
		QuerySelectivity: 5e-4,
		KNNPerStep:       20,
		K:                6,
		Seed:             9,
	})
	fmt.Printf("%-6s %-14s %-14s %-10s %s\n", "step", "update", "monitoring", "results", "strategy")
	for step := 0; step < plasticitySteps; step++ {
		st := simulation.Step()
		fmt.Printf("%-6d %-14v %-14v %-10d %s\n", st.Step,
			st.UpdateTime.Round(time.Microsecond), st.QueryTime.Round(time.Microsecond),
			st.RangeResults, engine.LastStrategy())
	}
	steps, rebuilds, scans := engine.Stats()
	fmt.Printf("maintenance: %d steps, %d rebuilds, %d scan-only steps\n", steps, rebuilds, scans)
}
