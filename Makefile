GO ?= go

.PHONY: all build test race bench bench-json serve cluster loadgen join-bench plan-bench mmap-bench cluster-bench cover fuzz fmt vet vet-strict chaos ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run 'xxx' -bench . -benchtime 1x ./...

# bench-json runs the paired pointer-vs-compact layout benchmarks and records
# ns/op, allocs/op and speedups in BENCH_PR2.json — the repo's perf
# trajectory file. BENCHTIME trades precision for runtime (CI uses a short
# one; local runs should keep the default 1s).
BENCHTIME ?= 1s
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR2.json -benchtime $(BENCHTIME)

# serve starts the HTTP spatial server (internal/serve behind
# cmd/spatialserver): range/knn/update/stats endpoints over a sharded,
# epoch-versioned store.
SERVE_ADDR ?= :8080
SERVE_ELEMENTS ?= 100000
serve:
	$(GO) run ./cmd/spatialserver -addr $(SERVE_ADDR) -elements $(SERVE_ELEMENTS)

# loadgen drives the serving store with mixed query+update traffic (E12) and
# records throughput + latency percentiles in BENCH_PR3.json. LOADGEN_ARGS
# shrinks the run in CI.
LOADGEN_ARGS ?= -elements 50000 -duration 2s
loadgen:
	$(GO) run ./cmd/spatialbench -exp serve $(LOADGEN_ARGS) -out BENCH_PR3.json

# join-bench runs the E13 join-scaling experiment (planner-driven parallel
# join engine: algorithm x workers x dataset density) and records
# sequential-vs-parallel speedups in BENCH_PR4.json. JOINBENCH_ARGS shrinks
# the run in CI.
JOINBENCH_ARGS ?= -elements 80000
join-bench:
	$(GO) run ./cmd/spatialbench -exp join-scale $(JOINBENCH_ARGS) -out BENCH_PR4.json

# plan-bench runs the E14 mixed-workload planning experiment (statistics
# catalog + query planner + epoch result cache vs every forced static index
# family) and records the per-configuration walls plus the planner-beats-worst
# verdict in BENCH_PR6.json. PLANBENCH_ARGS shrinks the run in CI.
PLANBENCH_ARGS ?= -elements 60000 -shards 8
plan-bench:
	$(GO) run ./cmd/spatialbench -exp plan $(PLANBENCH_ARGS) -out BENCH_PR6.json

# mmap-bench runs the E15 zero-copy serving experiment (mapped vs heap cold
# restart on the same durable store, answer identity across range/kNN, and
# the constrained-buffer-pool pread-vs-mmap page contrast) and records the
# cold-restart speedup + identity verdict in BENCH_PR9.json. MMAPBENCH_ARGS
# shrinks the run in CI; -shards pins the shard count so single-core runners
# still exercise multi-shard zero-copy recovery.
MMAPBENCH_ARGS ?= -elements 200000 -queries 100 -shards 4
mmap-bench:
	$(GO) run ./cmd/spatialbench -exp mmap $(MMAPBENCH_ARGS) -out BENCH_PR9.json

# cluster starts the distributed serving harness (cmd/spatialcluster): an
# in-process fleet of nodes behind the scatter/gather coordinator, with
# kill/revive admin endpoints for failure drills.
CLUSTER_ADDR ?= :8090
CLUSTER_NODES ?= 3
cluster:
	$(GO) run ./cmd/spatialcluster -addr $(CLUSTER_ADDR) -nodes $(CLUSTER_NODES) -elements $(SERVE_ELEMENTS)

# cluster-bench runs the E16 distributed scatter/gather experiment (3-node
# coordinator vs single-store answer identity, torn-epoch count under
# cluster-wide swap load, and the node-kill drills) and records the verdicts
# in BENCH_PR10.json. CLUSTERBENCH_ARGS shrinks the run in CI; CI greps the
# report for identical answers and zero torn epochs.
CLUSTERBENCH_ARGS ?= -elements 50000 -queries 100 -shards 4
cluster-bench:
	$(GO) run ./cmd/spatialbench -exp cluster $(CLUSTERBENCH_ARGS) -out BENCH_PR10.json

# cover runs the whole suite with coverage and fails if the total drops
# below the ratcheted baseline (raise the baseline when coverage improves,
# never lower it to make a red build green).
COVERAGE_BASELINE ?= 85.0
cover:
	$(GO) test -count=1 -coverprofile=coverage.out -covermode=atomic ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (baseline $(COVERAGE_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVERAGE_BASELINE)" 'BEGIN { exit (t + 0 < b + 0) ? 1 : 0 }' \
		|| { echo "FAIL: coverage $$total% is below the baseline $(COVERAGE_BASELINE)%"; exit 1; }

# fuzz gives each native fuzz target a short randomized pass on top of the
# committed seed corpora (testdata/fuzz/). Lengthen FUZZTIME for real
# hunting; CI keeps it short.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run xxx -fuzz 'FuzzDecodeSegment$$' -fuzztime $(FUZZTIME) ./internal/persist/
	$(GO) test -run xxx -fuzz FuzzDecodeSegmentMapped -fuzztime $(FUZZTIME) ./internal/persist/
	$(GO) test -run xxx -fuzz FuzzDecodeManifest -fuzztime $(FUZZTIME) ./internal/persist/
	$(GO) test -run xxx -fuzz FuzzDecodeCompact -fuzztime $(FUZZTIME) ./internal/persist/
	$(GO) test -run xxx -fuzz FuzzOverlayCompact -fuzztime $(FUZZTIME) ./internal/persist/
	$(GO) test -run xxx -fuzz FuzzAABBIntersectContain -fuzztime $(FUZZTIME) ./internal/geom/

# chaos soaks the durable serving store under injected disk faults (failed,
# torn and stalled writes), deadlined query load and crash-abandon restarts,
# under the race detector. The gate is zero wrong-answer events: every
# fault may degrade a reply but must never corrupt one. CHAOS_ROUNDS scales
# the number of restart rounds.
CHAOS_ROUNDS ?= 8
chaos:
	CHAOS_ROUNDS=$(CHAOS_ROUNDS) $(GO) test -race -count=1 -run 'TestChaosSoak' -v ./internal/serve/

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# vet-strict is the gate for the flat-memory query subsystem: the packages
# that carry the zero-allocation contract are vetted individually (so a
# failure names the package) and their tests must build under both build-tag
# variants (-race flips the raceEnabled guards).
vet-strict:
	$(GO) vet ./internal/index/... ./internal/rtree/... ./internal/grid/... \
		./internal/octree/... ./internal/kdtree/... ./internal/exec/... \
		./internal/core/... ./internal/join/... ./internal/serve/... \
		./internal/persist/... ./internal/storage/... ./internal/cluster/... \
		./cmd/benchjson/... ./cmd/spatialserver/... ./cmd/spatialcluster/...
	$(GO) test -run xxx -race ./internal/index/ ./internal/rtree/ ./internal/grid/ > /dev/null

ci: build fmt vet vet-strict race bench
