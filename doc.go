// Package spatialsim is a spatial data management library for the simulation
// sciences, reproducing the systems landscape of Heinis, Tauheed and Ailamaki,
// "Spatial Data Management Challenges in the Simulation Sciences" (EDBT 2014).
//
// The library lives under internal/:
//
//   - internal/geom, internal/stats, internal/instrument — geometry, summary
//     statistics and cost-accounting substrates;
//   - internal/datagen — synthetic simulation datasets (branched neuron
//     morphologies, clustered particles, uniform fields), movement models and
//     workload generators;
//   - internal/storage — the page-device layer behind one Pager contract:
//     the simulated page/latency disk of the paper's Figure 2 and the
//     real-file FileDisk the durability layer writes through, cached by a
//     pin-aware LRU BufferPool;
//   - internal/persist — the durability layer: page-aligned epoch segment
//     files (natively serialized R-Tree Compact slabs, item-list fallback
//     for other shard families), an append-only manifest/WAL with
//     checksummed records and rotation, crash recovery that falls back one
//     snapshot generation at a time, and PagedCompact — the disk-resident
//     paged read path over the same serialized format (the Figure 2 disk
//     baseline);
//   - internal/rtree, internal/crtree, internal/kdtree, internal/octree,
//     internal/grid, internal/lsh — the in-memory index families the paper
//     surveys; each tree/grid family also offers a packed read-optimised
//     Compact snapshot (node slab + structure-of-arrays leaves, built by
//     Freeze) serving the zero-allocation visitor query paths;
//   - internal/join — nested-loop, plane-sweep, PBSM-style grid, synchronized
//     R-Tree and TOUCH-style spatial joins behind a planner-driven Plan/Exec
//     split: a Planner picks the algorithm from input statistics
//     (cardinality, density, MBR overlap — the paper's criteria) and every
//     algorithm decomposes into independent tasks over shared partitioning
//     machinery (pooled CSR grid cell lists, flat STR hierarchies), with the
//     reference-point technique and emission-site filters guaranteeing no
//     pair is ever produced twice;
//   - internal/moving — throwaway, lazy (grace window) and buffered
//     moving-object update strategies;
//   - internal/mesh — mesh connectivity, DLS, OCTOPUS-style and FLAT-style
//     connectivity-driven range queries;
//   - internal/core — SimIndex, the grid-based index with a maintenance cost
//     advisor that the paper's conclusions call for;
//   - internal/catalog — the per-shard statistics catalog: freeze-time
//     profiles (cardinality, MBR, coverage, clustering, elongation) and the
//     online per-(family, query-class) latency accumulators the query
//     planner consumes;
//   - internal/planner — the cross-family query planner: chooses each
//     shard's index family from its catalog profile (falling back to a
//     plain scan for tiny shards), delegates join-algorithm choice to
//     join.Planner, absorbs core.Advisor's freeze/maintenance cost model,
//     and lets measured latency evidence override the a-priori choice;
//   - internal/exec — the parallel batch execution engine: worker-pool
//     BatchSearch/BatchKNN over any index family, the zero-allocation
//     BatchRangeVisit/BatchKNNInto visitor paths with reusable Arena
//     buffers, ParallelBulkLoad (STR sort-tile slabs, grid cell bands,
//     octants built concurrently), ParallelJoin (join.Plan tasks tiled over
//     the pool with reusable JoinArena pair buffers and a sort-merge gather)
//     and the striped-lock ConcurrentIndex wrapper;
//   - internal/sim — the time-stepped simulation harness of the paper's
//     Figure 1;
//   - internal/serve — the sharded, epoch-versioned serving subsystem: STR
//     space partitions of frozen Compact snapshots behind an atomic epoch
//     pointer with per-epoch refcounts, a background builder that stages
//     update batches and swaps generations without blocking readers,
//     scatter/gather range and global-merge kNN queries, epoch-pinned
//     parallel self-joins (Store.SelfJoin), and admission control bounding
//     in-flight queries; every operation flows through one
//     Store.Query(Request) Reply entry point whose Reply reports the
//     executed plan, with an optional planner (per-shard family choice)
//     and a bounded epoch-keyed result cache with query coalescing —
//     dropped wholesale on epoch retirement, so cached results can never
//     go stale; with a persist store attached the subsystem is
//     durable — batches are WAL-journaled as they are staged, a background
//     snapshotter persists published epochs without blocking readers, and
//     serve.Open recovers the newest complete epoch (replaying the WAL
//     tail) on boot; queries are deadline-aware (per-class defaults,
//     caller contexts observed mid-scan) and degrade gracefully — partial
//     results are marked Degraded with per-shard error detail, overload is
//     shed with typed errors, and snapshot/WAL I/O runs behind a
//     retry-and-circuit-breaker guard;
//   - internal/faultinject — the seed-deterministic failpoint registry
//     (error, latency, torn-write) wired into the storage, persist and
//     serve layers, powering the chaos soak (make chaos);
//   - internal/experiments — drivers regenerating every figure and in-text
//     experiment of the paper (see DESIGN.md and EXPERIMENTS.md).
//
// Executables: cmd/spatialbench (run any experiment, including the E12
// serving load generator writing BENCH_PR3.json, the E13 join-scaling
// experiment writing BENCH_PR4.json and the E14 planner-vs-static mixed
// workload writing BENCH_PR6.json), cmd/simrun (run a full simulation with
// a chosen index), cmd/benchjson (record the paired pointer-vs-compact
// layout benchmarks in BENCH_*.json) and cmd/spatialserver (versioned
// HTTP/JSON range, knn, join, update-batch and stats endpoints over
// internal/serve — /v1/ routes with the legacy unversioned paths kept as
// byte-identical aliases). Runnable examples are under examples/.
package spatialsim
